package edmac_test

// The deprecation contract of the legacy top-level API: every legacy
// function is a thin wrapper over the package-default Client, so its
// output must be byte-identical (as canonical JSON) to the Client
// method it wraps — across all five protocols and on a lossy builtin
// scenario. CI runs this file under -race, which also proves the
// default client is safe to share.

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

// shimScenario is a deployment every protocol accepts, busy enough
// that simulations deliver packets (finite delay statistics).
func shimScenario() edmac.Scenario {
	s := edmac.DefaultScenario()
	s.SampleInterval = 120
	return s
}

// asJSON canonicalizes any value for byte comparison.
func asJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// mustEqualJSON asserts two values encode identically.
func mustEqualJSON(t *testing.T, legacy, client any, what string) {
	t.Helper()
	l, c := asJSON(t, legacy), asJSON(t, client)
	if string(l) != string(c) {
		t.Errorf("%s: legacy and client outputs diverge\nlegacy: %s\nclient: %s", what, l, c)
	}
}

func newClient(t *testing.T) *edmac.Client {
	t.Helper()
	cli, err := edmac.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return cli
}

func TestShimOptimizeAllProtocols(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	req := edmac.PaperRequirements()
	for _, p := range edmac.Protocols() {
		legacy, legacyErr := edmac.OptimizeRelaxed(p, s, req)
		rep, clientErr := cli.Optimize(context.Background(),
			edmac.OptimizeRequest{Protocol: p, Scenario: &s, Requirements: req, Relaxed: true})
		if (legacyErr == nil) != (clientErr == nil) {
			t.Fatalf("%s: error mismatch: legacy %v, client %v", p, legacyErr, clientErr)
		}
		if legacyErr != nil {
			continue
		}
		mustEqualJSON(t, legacy, rep.Result, string(p)+" optimize")
	}
}

func TestShimOptimizeInfeasibleAgree(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	req := edmac.Requirements{EnergyBudget: 0.01, MaxDelay: 6}
	_, legacyErr := edmac.Optimize(edmac.LMAC, s, req)
	_, clientErr := cli.Optimize(context.Background(),
		edmac.OptimizeRequest{Protocol: edmac.LMAC, Scenario: &s, Requirements: req})
	if !errors.Is(legacyErr, edmac.ErrInfeasible) || !errors.Is(clientErr, edmac.ErrInfeasible) {
		t.Fatalf("infeasibility mismatch: legacy %v, client %v", legacyErr, clientErr)
	}
	if legacyErr.Error() != clientErr.Error() {
		t.Fatalf("error messages diverge: %q vs %q", legacyErr, clientErr)
	}
}

func TestShimFrontierAllProtocols(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	req := edmac.PaperRequirements()
	for _, p := range edmac.Protocols() {
		legacy, legacyErr := edmac.Frontier(p, s, req, 8)
		rep, clientErr := cli.Frontier(context.Background(),
			edmac.FrontierRequest{Protocol: p, Scenario: &s, Requirements: req, Points: 8})
		if (legacyErr == nil) != (clientErr == nil) {
			t.Fatalf("%s: error mismatch: legacy %v, client %v", p, legacyErr, clientErr)
		}
		if legacyErr != nil {
			continue
		}
		mustEqualJSON(t, legacy, rep.Points, string(p)+" frontier")
	}
}

func TestShimCompare(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	req := edmac.PaperRequirements()
	legacy := edmac.Compare(s, req)
	rep, err := cli.Compare(context.Background(), edmac.CompareRequest{Scenario: &s, Requirements: req})
	if err != nil {
		t.Fatalf("client compare: %v", err)
	}
	mustEqualJSON(t, legacy, rep.Comparisons, "compare")
	// The client surfaces the same winner Best() picks.
	best, ok := edmac.Best(legacy)
	if ok != (rep.Best >= 0) {
		t.Fatalf("winner presence mismatch: legacy %v, client index %d", ok, rep.Best)
	}
	if ok && rep.Comparisons[rep.Best].Protocol != best.Protocol {
		t.Fatalf("winner mismatch: legacy %s, client %s", best.Protocol, rep.Comparisons[rep.Best].Protocol)
	}
}

func TestShimSweeps(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	ctx := context.Background()
	for _, p := range edmac.Protocols() {
		delays := []float64{2, 6}
		legacy, legacyErr := edmac.SweepMaxDelay(ctx, p, s, 0.06, delays)
		rep, clientErr := cli.Sweep(ctx, edmac.SweepRequest{
			Protocol: p, Scenario: &s, Axis: edmac.SweepDelay, Fixed: 0.06, Values: delays,
		})
		if (legacyErr == nil) != (clientErr == nil) {
			t.Fatalf("%s delay sweep: error mismatch: %v vs %v", p, legacyErr, clientErr)
		}
		if legacyErr == nil {
			mustEqualJSON(t, legacy, rep.Points, string(p)+" delay sweep")
		}

		budgets := []float64{0.03, 0.06}
		legacy, legacyErr = edmac.SweepEnergyBudget(ctx, p, s, 6, budgets)
		rep, clientErr = cli.Sweep(ctx, edmac.SweepRequest{
			Protocol: p, Scenario: &s, Axis: edmac.SweepEnergy, Fixed: 6, Values: budgets,
		})
		if (legacyErr == nil) != (clientErr == nil) {
			t.Fatalf("%s budget sweep: error mismatch: %v vs %v", p, legacyErr, clientErr)
		}
		if legacyErr == nil {
			mustEqualJSON(t, legacy, rep.Points, string(p)+" budget sweep")
		}
	}
}

func TestShimEvaluateAndParams(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	ctx := context.Background()
	for _, p := range edmac.Protocols() {
		specs, err := edmac.Params(p, s)
		if err != nil {
			t.Fatalf("%s params: %v", p, err)
		}
		prep, err := cli.Params(ctx, edmac.ParamsRequest{Protocol: p, Scenario: &s})
		if err != nil {
			t.Fatalf("%s client params: %v", p, err)
		}
		mustEqualJSON(t, specs, prep.Params, string(p)+" params")

		// Evaluate at each parameter's midpoint — always admissible.
		params := make([]float64, len(specs))
		for i, sp := range specs {
			params[i] = (sp.Min + sp.Max) / 2
		}
		e, d, err := edmac.Evaluate(p, s, params)
		if err != nil {
			t.Fatalf("%s evaluate: %v", p, err)
		}
		erep, err := cli.Evaluate(ctx, edmac.EvaluateRequest{Protocol: p, Scenario: &s, Params: params})
		if err != nil {
			t.Fatalf("%s client evaluate: %v", p, err)
		}
		if e != erep.Energy || d != erep.Delay {
			t.Errorf("%s evaluate diverges: (%v,%v) vs (%v,%v)", p, e, d, erep.Energy, erep.Delay)
		}
	}
}

// simProtocols are the four protocols the packet simulator implements.
func simProtocols() []edmac.Protocol {
	return []edmac.Protocol{edmac.XMAC, edmac.BMAC, edmac.DMAC, edmac.LMAC}
}

// simParams returns a runnable vector per protocol under shimScenario.
func shimParams(t *testing.T, p edmac.Protocol, s edmac.Scenario) []float64 {
	t.Helper()
	res, err := edmac.OptimizeRelaxed(p, s, edmac.PaperRequirements())
	if err != nil {
		t.Fatalf("%s bargain for sim params: %v", p, err)
	}
	return res.Bargain.Params
}

func TestShimSimulateAllProtocols(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	o := edmac.SimOptions{Duration: 120, Seed: 3}
	for _, p := range simProtocols() {
		params := shimParams(t, p, s)
		legacy, legacyErr := edmac.Simulate(p, s, params, o)
		rep, clientErr := cli.Simulate(context.Background(), edmac.SimulateRequest{
			Protocol: p, Scenario: &s, Params: params, Options: o,
		})
		if (legacyErr == nil) != (clientErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", p, legacyErr, clientErr)
		}
		if legacyErr != nil {
			continue
		}
		mustEqualJSON(t, legacy, rep.Sim, string(p)+" simulate")
	}
	// SCPMAC is analytic-only on both paths.
	_, legacyErr := edmac.Simulate(edmac.SCPMAC, s, []float64{1}, o)
	_, clientErr := cli.Simulate(context.Background(), edmac.SimulateRequest{
		Protocol: edmac.SCPMAC, Scenario: &s, Params: []float64{1}, Options: o,
	})
	if legacyErr == nil || clientErr == nil || legacyErr.Error() != clientErr.Error() {
		t.Fatalf("scpmac rejection mismatch: %v vs %v", legacyErr, clientErr)
	}
}

func TestShimValidate(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	o := edmac.SimOptions{Duration: 400, Seed: 5}
	params := shimParams(t, edmac.XMAC, s)
	legacy, err := edmac.Validate(edmac.XMAC, s, params, o)
	if err != nil {
		t.Fatalf("legacy validate: %v", err)
	}
	rep, err := cli.Simulate(context.Background(), edmac.SimulateRequest{
		Protocol: edmac.XMAC, Scenario: &s, Params: params, Options: o, Validate: true,
	})
	if err != nil {
		t.Fatalf("client validate: %v", err)
	}
	mustEqualJSON(t, legacy.SimReport, rep.Sim, "validate sim report")
	if rep.Analytic == nil {
		t.Fatal("client validate carries no analytic check")
	}
	if legacy.AnalyticEnergy != rep.Analytic.Energy || legacy.AnalyticDelay != rep.Analytic.Delay {
		t.Fatalf("analytic values diverge: (%v,%v) vs (%v,%v)",
			legacy.AnalyticEnergy, legacy.AnalyticDelay, rep.Analytic.Energy, rep.Analytic.Delay)
	}
	if rep.Analytic.EnergyRatio == nil || *rep.Analytic.EnergyRatio != legacy.EnergyRatio {
		t.Fatalf("energy ratio diverges: %v vs %v", rep.Analytic.EnergyRatio, legacy.EnergyRatio)
	}
	if rep.Analytic.DelayRatio == nil || *rep.Analytic.DelayRatio != legacy.DelayRatio {
		t.Fatalf("delay ratio diverges: %v vs %v", rep.Analytic.DelayRatio, legacy.DelayRatio)
	}
}

// TestShimSimulateScenarioLossy pins shim equivalence on a lossy
// builtin: the declarative-scenario path with channel losses in play.
func TestShimSimulateScenarioLossy(t *testing.T) {
	cli := newClient(t)
	sp, ok := edmac.BuiltinScenario("ring-lossy")
	if !ok {
		t.Fatal("ring-lossy missing from the registry")
	}
	o := edmac.SimOptions{Duration: 120, Seed: 9}
	for _, p := range simProtocols() {
		an, err := sp.Scenario()
		if err != nil {
			t.Fatalf("analytic bridge: %v", err)
		}
		params := shimParams(t, p, an)
		legacy, legacyErr := edmac.SimulateScenario(p, sp, params, o)
		rep, clientErr := cli.Simulate(context.Background(), edmac.SimulateRequest{
			Protocol: p, Spec: &sp, Params: params, Options: o,
		})
		if (legacyErr == nil) != (clientErr == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", p, legacyErr, clientErr)
		}
		if legacyErr != nil {
			continue
		}
		mustEqualJSON(t, legacy, rep.Sim, string(p)+" lossy scenario simulate")
		if legacy.ChannelLosses == 0 {
			t.Errorf("%s: lossy scenario recorded no channel losses; the fixture is not exercising the channel", p)
		}

		// The builtin-name path resolves to the same spec.
		named, namedErr := cli.Simulate(context.Background(), edmac.SimulateRequest{
			Protocol: p, ScenarioName: "ring-lossy", Params: params, Options: o,
		})
		if namedErr != nil {
			t.Fatalf("%s by name: %v", p, namedErr)
		}
		mustEqualJSON(t, legacy, named.Sim, string(p)+" lossy scenario by name")
	}
}

func TestShimBatchAndSeeds(t *testing.T) {
	cli := newClient(t)
	s := shimScenario()
	params := shimParams(t, edmac.XMAC, s)
	o := edmac.SimOptions{Duration: 80}
	seeds := []int64{1, 2, 3}
	ctx := context.Background()

	legacy := edmac.SimulateSeeds(ctx, edmac.XMAC, s, params, o, seeds, 2)
	runs := make([]edmac.BatchRun, len(seeds))
	for i, seed := range seeds {
		opts := o
		opts.Seed = seed
		runs[i] = edmac.BatchRun{Protocol: edmac.XMAC, Params: params, Options: opts}
	}
	rep, err := cli.Batch(ctx, edmac.BatchRequest{Scenario: &s, Runs: runs, Workers: 2})
	if err != nil {
		t.Fatalf("client batch: %v", err)
	}
	if len(legacy) != len(rep.Outcomes) {
		t.Fatalf("outcome counts diverge: %d vs %d", len(legacy), len(rep.Outcomes))
	}
	for i := range legacy {
		if legacy[i].Err != nil || rep.Outcomes[i].Err != nil {
			t.Fatalf("run %d errored: %v vs %v", i, legacy[i].Err, rep.Outcomes[i].Err)
		}
		mustEqualJSON(t, legacy[i].Report, rep.Outcomes[i].Report, "batch outcome")
	}
}

// TestShimSuiteLossy pins the heaviest shim: RunSuite and Client.Suite
// produce byte-identical canonical JSON on a lossy scenario across an
// analytic-only and a simulated protocol.
func TestShimSuiteLossy(t *testing.T) {
	cli := newClient(t)
	sp, ok := edmac.BuiltinScenario("ring-lossy")
	if !ok {
		t.Fatal("ring-lossy missing")
	}
	specs := []edmac.ScenarioSpec{sp}
	protos := []edmac.Protocol{edmac.XMAC, edmac.SCPMAC}
	o := edmac.SuiteOptions{Duration: 40, Seed: 1}
	ctx := context.Background()

	legacy, err := edmac.RunSuite(ctx, specs, protos, o)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	client, err := cli.Suite(ctx, edmac.SuiteRequest{Scenarios: specs, Protocols: protos, Options: o})
	if err != nil {
		t.Fatalf("client suite: %v", err)
	}
	legacyJSON, err := legacy.JSON()
	if err != nil {
		t.Fatalf("legacy JSON: %v", err)
	}
	clientJSON, err := client.JSON()
	if err != nil {
		t.Fatalf("client JSON: %v", err)
	}
	if string(legacyJSON) != string(clientJSON) {
		t.Fatal("suite reports diverge between RunSuite and Client.Suite")
	}
}
