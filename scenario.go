package edmac

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/scenario"
	"github.com/edmac-project/edmac/internal/sim"
	"github.com/edmac-project/edmac/internal/topology"
)

// ScenarioSpec is a declarative deployment description: a named network
// shape (ring, random disk, grid, line/tunnel, two-tier cluster) plus a
// traffic model (periodic, bursty on-off, spatially-correlated events,
// heterogeneous per-node rates), parsed from versioned JSON. One spec
// drives both sides of the framework — the analytic game via Scenario()
// and the packet-level simulator via SimulateScenario — so the two views
// always describe the same deployment.
//
// Specs are immutable values; the zero ScenarioSpec is invalid and every
// constructor validates before returning.
type ScenarioSpec struct {
	spec scenario.Spec
}

// LoadScenario reads and validates a JSON scenario spec from disk.
func LoadScenario(path string) (ScenarioSpec, error) {
	s, err := scenario.Load(path)
	if err != nil {
		return ScenarioSpec{}, err
	}
	return ScenarioSpec{spec: s}, nil
}

// ParseScenario decodes and validates a JSON scenario spec. Unknown
// fields are rejected so typos fail loudly.
func ParseScenario(data []byte) (ScenarioSpec, error) {
	s, err := scenario.Parse(data)
	if err != nil {
		return ScenarioSpec{}, err
	}
	return ScenarioSpec{spec: s}, nil
}

// BuiltinScenarios returns the built-in scenario registry in
// presentation order: a curated matrix of deployment shapes × workloads
// covering every topology generator and traffic model.
func BuiltinScenarios() []ScenarioSpec {
	specs := scenario.Builtins()
	out := make([]ScenarioSpec, len(specs))
	for i, s := range specs {
		out[i] = ScenarioSpec{spec: s}
	}
	return out
}

// BuiltinScenario returns the named built-in scenario.
func BuiltinScenario(name string) (ScenarioSpec, bool) {
	s, ok := scenario.ByName(name)
	if !ok {
		return ScenarioSpec{}, false
	}
	return ScenarioSpec{spec: s}, true
}

// Name returns the scenario's registry name.
func (sp ScenarioSpec) Name() string { return sp.spec.Name }

// Description returns the scenario's one-line summary.
func (sp ScenarioSpec) Description() string { return sp.spec.Description }

// TopologyKind returns the topology family ("ring", "disk", "grid",
// "line", "cluster").
func (sp ScenarioSpec) TopologyKind() string { return sp.spec.Topology.Kind }

// TrafficKind returns the traffic model family ("periodic", "bursty",
// "event", "heterogeneous", or "phased" for a version-2 non-stationary
// composition).
func (sp ScenarioSpec) TrafficKind() string { return sp.spec.TrafficKind() }

// Phased reports whether the scenario's workload is a version-2 phase
// composition — the scenarios an adaptive suite re-bargains per phase.
func (sp ScenarioSpec) Phased() bool { return len(sp.spec.Phases) > 0 }

// ChannelKind returns the link-quality family ("perfect", "bernoulli",
// "shadowing"); scenarios without a channel block are "perfect".
func (sp ScenarioSpec) ChannelKind() string { return sp.spec.ChannelKind() }

// FailureKind returns the failure-process family ("churn", "schedule");
// scenarios without a failures block are "none".
func (sp ScenarioSpec) FailureKind() string { return sp.spec.FailureKind() }

// Faulty reports whether the scenario injects failure dynamics — node
// churn, an explicit crash schedule, or finite batteries (version 4).
// Faulty scenarios' simulation reports carry the survivability block.
func (sp ScenarioSpec) Faulty() bool { return sp.spec.Faulty() }

// JSON returns the spec in its canonical indented JSON encoding.
func (sp ScenarioSpec) JSON() ([]byte, error) { return sp.spec.JSON() }

// MarshalJSON encodes the spec compactly, so specs can ride inside
// larger request documents (SuiteRequest, edserve payloads) and inside
// the Client's canonical cache keys.
func (sp ScenarioSpec) MarshalJSON() ([]byte, error) {
	if err := sp.valid(); err != nil {
		return nil, err
	}
	return json.Marshal(sp.spec)
}

// UnmarshalJSON decodes and validates an embedded scenario spec with
// the same strictness as ParseScenario (unknown fields rejected).
func (sp *ScenarioSpec) UnmarshalJSON(data []byte) error {
	s, err := scenario.Parse(data)
	if err != nil {
		return err
	}
	sp.spec = s
	return nil
}

// valid reports whether the spec was built by a constructor.
func (sp ScenarioSpec) valid() error {
	if sp.spec.Name == "" {
		return fmt.Errorf("edmac: zero ScenarioSpec; use LoadScenario, ParseScenario or BuiltinScenario")
	}
	return nil
}

// Scenario maps the spec onto the analytic ring abstraction the
// closed-form models need: the materialized network's BFS depth becomes
// the ring depth D, its rounded mean degree the density C, and the
// traffic model's mean per-node rate the sampling rate. This is the
// bridge that lets the bargaining game pick MAC parameters for any
// deployment shape, which the simulator then stresses on the explicit
// network.
func (sp ScenarioSpec) Scenario() (Scenario, error) {
	if err := sp.valid(); err != nil {
		return Scenario{}, err
	}
	m, err := sp.spec.Materialize()
	if err != nil {
		return Scenario{}, err
	}
	return analyticScenarioOf(m), nil
}

// analyticScenarioOf is the one place a materialized scenario collapses
// to the analytic ring Scenario — ScenarioSpec.Scenario() and the suite
// runner must agree on this mapping. Link quality collapses the same
// way the topology does: the network's mean link PRR becomes the ring
// model's homogeneous per-hop PRR (exactly 1, i.e. unset, for perfect
// channels, keeping legacy scenarios bit-identical).
func analyticScenarioOf(m *scenario.Materialized) Scenario {
	ring := m.EquivalentRing()
	s := Scenario{
		Depth:          ring.Depth,
		Density:        ring.Density,
		SampleInterval: 1 / m.MeanRate(),
		Window:         m.Spec.Window,
		Payload:        m.Spec.Payload,
		Radio:          m.Spec.Radio,
	}
	if prr := m.Network.MeanLinkPRR(); prr < 1 {
		s.LinkPRR = prr
	}
	return s
}

// SimulateScenario replays a protocol configuration at packet level on
// the spec's explicit network under its traffic model. Params use the
// same coordinates as the analytic model (see Params); SCPMAC is
// analytic-only and rejected, as in Simulate.
//
// Deprecated: use (*Client).Simulate with SimulateRequest.Spec (or
// ScenarioName for builtins), whose context can abort the run; this
// wrapper delegates to the package-default client and behaves
// identically.
func SimulateScenario(p Protocol, sp ScenarioSpec, params []float64, o SimOptions) (SimReport, error) {
	rep, err := defaultClient().Simulate(context.Background(), SimulateRequest{
		Protocol: p, Spec: &sp, Params: params, Options: o,
	})
	return rep.Sim, err
}

// simulateScenario is the context-aware run behind Client.Simulate's
// declarative-scenario path.
func simulateScenario(ctx context.Context, p Protocol, sp ScenarioSpec, params []float64, o SimOptions) (SimReport, error) {
	if err := sp.valid(); err != nil {
		return SimReport{}, err
	}
	if p == SCPMAC {
		return SimReport{}, fmt.Errorf("edmac: scpmac is analytic-only; simulate xmac, bmac, dmac or lmac")
	}
	o = o.withDefaults()
	m, err := sp.spec.Materialize()
	if err != nil {
		return SimReport{}, err
	}
	capture, captureDB := sp.spec.CaptureConfig()
	cfg := sim.Config{
		Protocol:  string(p),
		Network:   m.Network,
		Radio:     m.Radio,
		Params:    opt.Vector(append([]float64(nil), params...)),
		Traffic:   m.Traffic,
		Payload:   sp.spec.Payload,
		Duration:  o.Duration,
		Seed:      o.Seed,
		Capture:   capture,
		CaptureDB: captureDB,
	}
	cfg.Failures, cfg.Battery = faultConfigOf(sp.spec)
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return SimReport{}, err
	}
	return simReportOf(p, params, cfg.Seed, m.Network.Depth(), sp.spec.Window, m.Network, res), nil
}

// faultConfigOf maps a spec's version-4 failure blocks onto the
// simulator's fault configuration — the one place the two vocabularies
// meet, shared by the direct simulation path and the suite runner.
// Failure-free specs map to (nil, nil), which keeps the simulator on
// its draw-free fixed-topology path.
func faultConfigOf(s scenario.Spec) (*sim.FailureConfig, *sim.BatteryConfig) {
	var fc *sim.FailureConfig
	var bc *sim.BatteryConfig
	if f := s.Failures; f != nil {
		fc = &sim.FailureConfig{MTBF: f.MTBF, MTTR: f.MTTR}
		for _, ev := range f.Events {
			fc.Events = append(fc.Events, sim.FailureEvent{
				Node:     topology.NodeID(ev.Node),
				At:       ev.At,
				Duration: ev.Duration,
			})
		}
	}
	if b := s.Battery; b != nil {
		bc = &sim.BatteryConfig{Capacity: b.CapacityJ}
	}
	return fc, bc
}
