package edmac

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/edmac-project/edmac/internal/jobs"
	"github.com/edmac-project/edmac/internal/jsonwire"
	"github.com/edmac-project/edmac/internal/lru"
)

// Client is the package's service surface: one configured entry point
// whose methods expose the whole pipeline — P1/P2 optima and the Nash
// bargain (Optimize, Frontier, Compare, Sweep), the packet-level
// simulator (Simulate, Batch) and the scenario×protocol evaluation
// matrix (Suite, SuiteStream) — uniformly as (ctx, Request) →
// (Report, error).
//
// A Client is immutable after construction and safe for concurrent use
// by any number of goroutines; one Client per process is the intended
// shape (the edserve HTTP service runs exactly that). The zero Client
// is invalid; use NewClient. Every legacy top-level function in this
// package is a thin deprecated wrapper over the package-default
// client, so the two API styles always agree.
//
// Determinism carries over from the underlying layers: equal requests
// against equally-configured clients produce identical reports, which
// is what makes result caching (WithCache) sound.
type Client struct {
	workers  int
	scenario Scenario
	baseSeed int64
	cache    *lru.Cache // nil: caching disabled

	// The async job tier (SubmitJob and friends) — created lazily on
	// first use, so clients that never submit a job carry no worker
	// pool. jobsOpts is fixed at construction (WithJobs); the store
	// pointer is the one piece of mutable state a Client owns, guarded
	// by jobsMu. Close releases it.
	jobsMu    sync.Mutex
	jobsStore *jobs.Store
	jobsOpts  jobs.Options
}

// Option configures a Client under construction (functional options).
type Option func(*Client) error

// WithWorkers fixes the worker-pool size used by Sweep, Batch and
// Suite when their requests don't name one. Values below 1 (the
// default) mean one worker per CPU.
func WithWorkers(n int) Option {
	return func(c *Client) error {
		c.workers = n
		return nil
	}
}

// WithScenario sets the deployment used by requests whose Scenario
// field is nil. The default is DefaultScenario(). The scenario is
// validated at construction so a misconfigured client fails fast, not
// on first use.
func WithScenario(s Scenario) Option {
	return func(c *Client) error {
		if _, err := s.env(); err != nil {
			return fmt.Errorf("edmac: WithScenario: %w", err)
		}
		c.scenario = s
		return nil
	}
}

// WithRadio swaps the transceiver profile of the client's default
// scenario ("cc2420", "cc1101"). It composes with WithScenario in
// option order.
func WithRadio(name string) Option {
	return func(c *Client) error {
		s := c.scenario
		s.Radio = name
		if _, err := s.env(); err != nil {
			return fmt.Errorf("edmac: WithRadio: %w", err)
		}
		c.scenario = s
		return nil
	}
}

// WithBaseSeed sets the client's seed policy: the base is folded (XOR)
// into every simulation seed a request supplies, so one deployment's
// runs decorrelate from another's while each request stays
// reproducible from its own seed. The default base 0 folds to the
// identity — seeds pass through untouched, matching the legacy
// top-level functions bit for bit. Effective seeds are echoed in the
// reports (SimReport.Seed, SuiteReport.Seed), so results remain
// self-describing.
func WithBaseSeed(seed int64) Option {
	return func(c *Client) error {
		c.baseSeed = seed
		return nil
	}
}

// WithCache enables the client's analytic result cache: a bounded,
// concurrency-safe LRU keyed on the canonicalized request JSON,
// covering Optimize, Frontier, Compare and Sweep — identical repeated
// requests are served from memory instead of re-running the
// Nelder-Mead solvers. Capacities below 1 select DefaultCacheSize.
// Cached values are deep-copied on both insert and hit, so callers may
// mutate reports freely. Simulation methods are never cached here (the
// serve layer caches whole responses instead).
//
// The default is no cache, keeping the package-default client — and
// therefore every legacy function and benchmark — allocation- and
// behavior-identical to the pre-Client API.
func WithCache(capacity int) Option {
	return func(c *Client) error {
		if capacity < 1 {
			capacity = DefaultCacheSize
		}
		c.cache = lru.New(capacity)
		return nil
	}
}

// NewClient builds a Client from functional options; see the Option
// constructors for the knobs and their defaults.
func NewClient(opts ...Option) (*Client, error) {
	c := &Client{scenario: DefaultScenario()}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// defaultClient is the cache-free client behind the deprecated
// top-level functions. Construction cannot fail (no options).
var defaultClient = sync.OnceValue(func() *Client {
	c, err := NewClient()
	if err != nil {
		panic("edmac: default client: " + err.Error())
	}
	return c
})

// CacheStats describes the result cache's lifetime effectiveness.
type CacheStats struct {
	// Hits and Misses count cache lookups (0/0 when caching is off).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// CacheStats reports the analytic result cache's counters; all-zero
// when the client was built without WithCache.
func (c *Client) CacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	hits, misses := c.cache.Stats()
	return CacheStats{Hits: hits, Misses: misses, Entries: c.cache.Len()}
}

// ready normalizes the context convention shared by every method: nil
// means context.Background(), and an already-done context fails before
// any work starts.
func ready(ctx context.Context) (context.Context, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx, ctx.Err()
}

// scenarioOrDefault resolves a request's optional scenario against the
// client's default.
func (c *Client) scenarioOrDefault(s *Scenario) Scenario {
	if s != nil {
		return *s
	}
	return c.scenario
}

// workersOrDefault resolves a request's optional worker count against
// the client's default.
func (c *Client) workersOrDefault(n int) int {
	if n > 0 {
		return n
	}
	return c.workers
}

// cacheKey is the shared request-canonicalization rule (operation name
// + canonical JSON); the serve layer keys its response cache with the
// same one, so the two caches can never disagree on which requests are
// identical.
var cacheKey = jsonwire.CacheKey

// clone deep-copies a Result so cached values never alias caller-held
// slices.
func (r Result) clone() Result {
	r.EnergyOptimal.Params = append([]float64(nil), r.EnergyOptimal.Params...)
	r.DelayOptimal.Params = append([]float64(nil), r.DelayOptimal.Params...)
	r.Bargain.Params = append([]float64(nil), r.Bargain.Params...)
	return r
}

// --- Optimize ---------------------------------------------------------

// OptimizeRequest asks for the full energy-delay game of one protocol.
type OptimizeRequest struct {
	// Protocol selects the MAC protocol to play.
	Protocol Protocol `json:"protocol"`
	// Scenario is the deployment; nil selects the client's default.
	Scenario *Scenario `json:"scenario,omitempty"`
	// Requirements are the application inputs (Ebudget, Lmax).
	Requirements Requirements `json:"requirements"`
	// Relaxed selects the paper's figure behaviour for over-constrained
	// requirements: a best-effort point flagged BudgetExceeded instead
	// of ErrInfeasible.
	Relaxed bool `json:"relaxed,omitempty"`
}

// OptimizeReport is the game's outcome.
type OptimizeReport struct {
	Result Result `json:"result"`
}

// cachedOptimize is the cache entry of one optimize request: the
// result, or the (immutable) infeasibility error.
type cachedOptimize struct {
	res Result
	err error
}

// Optimize plays the full game for one protocol: P1/P2 optima, threat
// point and the Nash bargain. With caching enabled, repeated identical
// requests — including ones that proved infeasible — are served from
// the LRU instead of the Nelder-Mead solver. A single solve takes
// milliseconds and runs to completion once started; ctx is honoured at
// the request boundary (the multi-solve methods — Frontier, Compare,
// Sweep — cancel at cell granularity).
func (c *Client) Optimize(ctx context.Context, req OptimizeRequest) (OptimizeReport, error) {
	if _, err := ready(ctx); err != nil {
		return OptimizeReport{}, err
	}
	res, err := c.optimizeCached(req.Protocol, c.scenarioOrDefault(req.Scenario), req.Requirements, req.Relaxed)
	if err != nil {
		return OptimizeReport{}, err
	}
	return OptimizeReport{Result: res}, nil
}

// optimizeCached is the cache-aware core shared by Optimize, Compare
// and the legacy wrappers.
func (c *Client) optimizeCached(p Protocol, s Scenario, r Requirements, relaxed bool) (Result, error) {
	key, cacheable := "", false
	if c.cache != nil {
		key, cacheable = cacheKey("optimize", OptimizeRequest{Protocol: p, Scenario: &s, Requirements: r, Relaxed: relaxed})
		if cacheable {
			if v, ok := c.cache.Get(key); ok {
				hit := v.(cachedOptimize)
				return hit.res.clone(), hit.err
			}
		}
	}
	res, err := optimize(p, s, r, relaxed)
	// Solver outcomes are pure functions of the request, so successes
	// and infeasibility verdicts both cache; other errors (bad scenario,
	// unknown protocol) are cheap to recompute and stay out.
	if cacheable && (err == nil || errors.Is(err, ErrInfeasible)) {
		c.cache.Add(key, cachedOptimize{res: res.clone(), err: err})
	}
	return res, err
}

// --- Frontier ---------------------------------------------------------

// FrontierRequest asks for a protocol's Pareto curve.
type FrontierRequest struct {
	Protocol Protocol  `json:"protocol"`
	Scenario *Scenario `json:"scenario,omitempty"`
	// Requirements bound the curve (delay up to MaxDelay under
	// EnergyBudget).
	Requirements Requirements `json:"requirements"`
	// Points is the number of sweep points (≥ 2).
	Points int `json:"points"`
}

// FrontierReport is the traced Pareto frontier.
type FrontierReport struct {
	Protocol Protocol        `json:"protocol"`
	Points   []FrontierPoint `json:"points"`
}

// Frontier traces a protocol's energy-delay Pareto frontier — the
// continuous curves of the paper's figures. Cached like Optimize;
// cancelling ctx abandons the trace at point granularity.
func (c *Client) Frontier(ctx context.Context, req FrontierRequest) (FrontierReport, error) {
	ctx, err := ready(ctx)
	if err != nil {
		return FrontierReport{}, err
	}
	s := c.scenarioOrDefault(req.Scenario)
	key, cacheable := "", false
	if c.cache != nil {
		resolved := req
		resolved.Scenario = &s
		key, cacheable = cacheKey("frontier", resolved)
		if cacheable {
			if v, ok := c.cache.Get(key); ok {
				return FrontierReport{Protocol: req.Protocol, Points: cloneFrontier(v.([]FrontierPoint))}, nil
			}
		}
	}
	pts, err := frontier(ctx, req.Protocol, s, req.Requirements, req.Points)
	if err != nil {
		return FrontierReport{}, err
	}
	if cacheable {
		c.cache.Add(key, cloneFrontier(pts))
	}
	return FrontierReport{Protocol: req.Protocol, Points: pts}, nil
}

func cloneFrontier(pts []FrontierPoint) []FrontierPoint {
	out := make([]FrontierPoint, len(pts))
	for i, pt := range pts {
		pt.Params = append([]float64(nil), pt.Params...)
		out[i] = pt
	}
	return out
}

// --- Compare ----------------------------------------------------------

// CompareRequest plays the same requirements across several protocols.
type CompareRequest struct {
	Scenario     *Scenario    `json:"scenario,omitempty"`
	Requirements Requirements `json:"requirements"`
	// Protocols lists the contenders; empty selects the paper's three
	// (XMAC, DMAC, LMAC), as Compare always has.
	Protocols []Protocol `json:"protocols,omitempty"`
}

// CompareReport is one entry per protocol, in request order, plus the
// winner. Per-protocol failures are entries with Err set — an
// infeasible protocol is reported, never silently dropped.
type CompareReport struct {
	Comparisons []Comparison `json:"comparisons"`
	// Best indexes the winning comparison (lowest bargain energy among
	// protocols meeting the requirements outright); -1 when none
	// qualifies.
	Best int `json:"best"`
}

// Compare plays the game for each requested protocol under the same
// requirements (relaxed mode, as in the paper's figures). Cancelling
// ctx abandons the comparison at protocol granularity.
func (c *Client) Compare(ctx context.Context, req CompareRequest) (CompareReport, error) {
	ctx, err := ready(ctx)
	if err != nil {
		return CompareReport{}, err
	}
	protocols := req.Protocols
	if len(protocols) == 0 {
		protocols = PaperProtocols()
	}
	s := c.scenarioOrDefault(req.Scenario)
	out := make([]Comparison, 0, len(protocols))
	for _, p := range protocols {
		if err := ctx.Err(); err != nil {
			return CompareReport{}, err
		}
		res, err := c.optimizeCached(p, s, req.Requirements, true)
		out = append(out, Comparison{Protocol: p, Result: res, Err: err})
	}
	report := CompareReport{Comparisons: out, Best: -1}
	if best, ok := Best(out); ok {
		for i := range out {
			if out[i].Protocol == best.Protocol {
				report.Best = i
				break
			}
		}
	}
	return report, nil
}

// --- Sweep ------------------------------------------------------------

// SweepAxis selects which requirement coordinate a Sweep varies.
type SweepAxis string

const (
	// SweepDelay varies MaxDelay with EnergyBudget fixed (Figure 1).
	SweepDelay SweepAxis = "max-delay"
	// SweepEnergy varies EnergyBudget with MaxDelay fixed (Figure 2).
	SweepEnergy SweepAxis = "energy-budget"
)

// SweepRequest asks for a series of games along one requirement axis.
type SweepRequest struct {
	Protocol Protocol  `json:"protocol"`
	Scenario *Scenario `json:"scenario,omitempty"`
	// Axis names the varied coordinate.
	Axis SweepAxis `json:"axis"`
	// Fixed is the held coordinate: the energy budget for SweepDelay,
	// the delay bound for SweepEnergy.
	Fixed float64 `json:"fixed"`
	// Values are the swept coordinate's values, solved independently
	// (and concurrently) in this order.
	Values []float64 `json:"values"`
	// Workers bounds the pool; 0 means the client's default.
	Workers int `json:"workers,omitempty"`
}

// SweepReport is the solved series, ordered like the request's Values.
type SweepReport struct {
	Protocol Protocol     `json:"protocol"`
	Axis     SweepAxis    `json:"axis"`
	Points   []SweepPoint `json:"points"`
}

// Sweep solves the game at every value of the chosen requirement axis,
// fanning the independent cells over the worker pool with the module's
// usual determinism contract (bit-identical to sequential, ordered
// like the input). Successful sweeps are cached like Optimize.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepReport, error) {
	ctx, err := ready(ctx)
	if err != nil {
		return SweepReport{}, err
	}
	s := c.scenarioOrDefault(req.Scenario)
	key, cacheable := "", false
	if c.cache != nil {
		resolved := req
		resolved.Scenario = &s
		resolved.Workers = 0 // concurrency never changes results
		key, cacheable = cacheKey("sweep", resolved)
		if cacheable {
			if v, ok := c.cache.Get(key); ok {
				return SweepReport{Protocol: req.Protocol, Axis: req.Axis, Points: cloneSweep(v.([]SweepPoint))}, nil
			}
		}
	}
	var pts []SweepPoint
	switch req.Axis {
	case SweepDelay:
		pts, err = sweepMaxDelay(ctx, req.Protocol, s, req.Fixed, req.Values, c.workersOrDefault(req.Workers))
	case SweepEnergy:
		pts, err = sweepEnergyBudget(ctx, req.Protocol, s, req.Fixed, req.Values, c.workersOrDefault(req.Workers))
	default:
		return SweepReport{}, fmt.Errorf("edmac: unknown sweep axis %q (want %q or %q)", req.Axis, SweepDelay, SweepEnergy)
	}
	if err != nil {
		return SweepReport{}, err
	}
	if cacheable {
		c.cache.Add(key, cloneSweep(pts))
	}
	return SweepReport{Protocol: req.Protocol, Axis: req.Axis, Points: pts}, nil
}

func cloneSweep(pts []SweepPoint) []SweepPoint {
	out := make([]SweepPoint, len(pts))
	for i, pt := range pts {
		pt.Result = pt.Result.clone()
		out[i] = pt
	}
	return out
}

// --- Evaluate / Params ------------------------------------------------

// EvaluateRequest asks for the analytic metrics of an explicit
// parameter vector.
type EvaluateRequest struct {
	Protocol Protocol  `json:"protocol"`
	Scenario *Scenario `json:"scenario,omitempty"`
	Params   []float64 `json:"params"`
}

// EvaluateReport carries the model's predictions at the vector.
type EvaluateReport struct {
	// Energy is joules per window at the bottleneck node; Delay the
	// worst-case expected end-to-end delay in seconds.
	Energy float64 `json:"energy"`
	Delay  float64 `json:"delay"`
}

// Evaluate returns the analytic energy and delay of an explicit
// parameter vector — what-if exploration around an optimum.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (EvaluateReport, error) {
	if _, err := ready(ctx); err != nil {
		return EvaluateReport{}, err
	}
	energy, delay, err := evaluate(req.Protocol, c.scenarioOrDefault(req.Scenario), req.Params)
	if err != nil {
		return EvaluateReport{}, err
	}
	return EvaluateReport{Energy: energy, Delay: delay}, nil
}

// ParamsRequest asks for a protocol's tunable parameter table.
type ParamsRequest struct {
	Protocol Protocol  `json:"protocol"`
	Scenario *Scenario `json:"scenario,omitempty"`
}

// ParamsReport is the parameter table, in the order every Params slice
// in this package uses.
type ParamsReport struct {
	Params []ParamSpec `json:"params"`
}

// Params returns the tunable parameter table of a protocol under the
// scenario.
func (c *Client) Params(ctx context.Context, req ParamsRequest) (ParamsReport, error) {
	if _, err := ready(ctx); err != nil {
		return ParamsReport{}, err
	}
	specs, err := paramSpecs(req.Protocol, c.scenarioOrDefault(req.Scenario))
	if err != nil {
		return ParamsReport{}, err
	}
	return ParamsReport{Params: specs}, nil
}

// --- Simulate ---------------------------------------------------------

// SimulateRequest replays a protocol configuration at packet level.
// The deployment comes from exactly one of three sources: Spec (a
// declarative scenario), ScenarioName (the builtin registry), or
// Scenario (the analytic ring placement; nil falls back to the
// client's default rings).
type SimulateRequest struct {
	Protocol Protocol `json:"protocol"`
	// Scenario simulates the deterministic ring placement of the
	// analytic scenario (the legacy Simulate behaviour).
	Scenario *Scenario `json:"scenario,omitempty"`
	// ScenarioName selects a builtin declarative scenario by registry
	// name (see BuiltinScenarios).
	ScenarioName string `json:"scenario_name,omitempty"`
	// Spec is a full declarative scenario (the legacy SimulateScenario
	// behaviour).
	Spec *ScenarioSpec `json:"spec,omitempty"`
	// Params is the protocol parameter vector (macmodel coordinates).
	Params []float64 `json:"params"`
	// Options carry duration and seed; the client's base seed is folded
	// into the effective seed (see WithBaseSeed).
	Options SimOptions `json:"options,omitempty"`
	// Validate adds the measured-vs-analytic cross-check to the report.
	Validate bool `json:"validate,omitempty"`
}

// AnalyticCheck contrasts a simulation with the analytic model.
type AnalyticCheck struct {
	// Energy and Delay are the model's predictions.
	Energy float64 `json:"energy"`
	Delay  float64 `json:"delay"`
	// EnergyRatio and DelayRatio are measured/predicted, omitted when
	// the measurement is unusable (e.g. nothing was delivered).
	EnergyRatio *float64 `json:"energy_ratio,omitempty"`
	DelayRatio  *float64 `json:"delay_ratio,omitempty"`
}

// SimulateReport is the measured outcome, plus the analytic
// cross-check when the request asked to validate.
type SimulateReport struct {
	Sim SimReport `json:"sim"`
	// Analytic is set if and only if the request's Validate flag was.
	Analytic *AnalyticCheck `json:"analytic,omitempty"`
}

// Simulate replays a protocol configuration at packet level and
// reports measured delivery, delay and energy. Cancelling ctx aborts
// the event loop within a few thousand events — long lossy-channel
// runs no longer have to be waited out. SCPMAC is analytic-only and
// rejected, as always.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (SimulateReport, error) {
	ctx, err := ready(ctx)
	if err != nil {
		return SimulateReport{}, err
	}
	o := req.Options
	o.Seed ^= c.baseSeed

	named := 0
	for _, set := range []bool{req.Scenario != nil, req.ScenarioName != "", req.Spec != nil} {
		if set {
			named++
		}
	}
	if named > 1 {
		return SimulateReport{}, fmt.Errorf("edmac: simulate request names %d deployments; set at most one of scenario, scenario_name, spec", named)
	}

	var rep SimReport
	var analytic Scenario
	switch {
	case req.Spec != nil || req.ScenarioName != "":
		sp := ScenarioSpec{}
		if req.Spec != nil {
			sp = *req.Spec
		} else {
			var ok bool
			sp, ok = BuiltinScenario(req.ScenarioName)
			if !ok {
				return SimulateReport{}, fmt.Errorf("edmac: unknown builtin scenario %q", req.ScenarioName)
			}
		}
		rep, err = simulateScenario(ctx, req.Protocol, sp, req.Params, o)
		if err != nil {
			return SimulateReport{}, err
		}
		if req.Validate {
			if analytic, err = sp.Scenario(); err != nil {
				return SimulateReport{}, err
			}
		}
	default:
		analytic = c.scenarioOrDefault(req.Scenario)
		rep, err = simulate(ctx, req.Protocol, analytic, req.Params, o)
		if err != nil {
			return SimulateReport{}, err
		}
	}
	out := SimulateReport{Sim: rep}
	if req.Validate {
		check, err := analyticCheckOf(req.Protocol, analytic, req.Params, rep)
		if err != nil {
			return SimulateReport{}, err
		}
		out.Analytic = &check
	}
	return out, nil
}

// analyticCheckOf evaluates the model at the simulated vector and
// forms the measured/predicted ratios, falling back to raw model
// evaluation for vectors outside the admissible box (a deliberately
// extreme what-if), exactly as Validate always has.
func analyticCheckOf(p Protocol, s Scenario, params []float64, rep SimReport) (AnalyticCheck, error) {
	energy, delay, err := evaluate(p, s, params)
	if err != nil {
		m, merr := s.model(p)
		if merr != nil {
			return AnalyticCheck{}, merr
		}
		x, verr := vec(m, params)
		if verr != nil {
			return AnalyticCheck{}, verr
		}
		energy, delay = m.Energy(x), m.Delay(x)
	}
	check := AnalyticCheck{Energy: energy, Delay: delay}
	if rep.BottleneckEnergy > 0 {
		check.EnergyRatio = finiteOrNil(rep.BottleneckEnergy / energy)
	}
	check.DelayRatio = finiteOrNil(rep.OuterRingDelay / delay)
	return check, nil
}

// --- Batch ------------------------------------------------------------

// BatchRequest executes independent simulation runs concurrently.
type BatchRequest struct {
	// Scenario is the shared deployment; nil selects the client's
	// default.
	Scenario *Scenario `json:"scenario,omitempty"`
	// Runs are the independent simulations; outcomes keep this order.
	Runs []BatchRun `json:"runs"`
	// Workers bounds the pool; 0 means the client's default.
	Workers int `json:"workers,omitempty"`
}

// BatchReport is one outcome per run, in request order.
type BatchReport struct {
	Outcomes []BatchOutcome `json:"outcomes"`
}

// Batch executes independent simulation runs concurrently on the
// worker pool. Reports are bit-identical to sequential Simulate calls
// with the same inputs; parallelism changes only the wall clock.
// Cancelling ctx abandons queued runs and aborts in-flight ones; their
// outcomes carry the context's error, and Batch additionally returns
// it. Unlike the other methods, an already-done ctx still yields one
// outcome per run (each carrying the context's error, or its own
// validation error) — batch consumers index outcomes by run, so the
// slice's shape must never depend on timing.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (BatchReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := simulateBatch(ctx, c.scenarioOrDefault(req.Scenario), req.Runs, c.workersOrDefault(req.Workers), c.baseSeed)
	return BatchReport{Outcomes: out}, ctx.Err()
}

// --- Suite ------------------------------------------------------------

// SuiteRequest plays the scenario×protocol evaluation matrix.
type SuiteRequest struct {
	// Scenarios are the deployments; at least one is required (the
	// edserve layer defaults to the whole builtin registry).
	Scenarios []ScenarioSpec `json:"scenarios"`
	// Protocols are the columns; at least one is required.
	Protocols []Protocol `json:"protocols"`
	// Options tune per-cell duration, requirements, seeding and the
	// adaptive runtime.
	Options SuiteOptions `json:"options,omitempty"`
}

// Suite plays the full evaluation matrix — every scenario × every
// protocol — on the worker pool and returns the monolithic report; see
// RunSuite for the cell-level contract (this is the same engine). Use
// SuiteStream to consume cells as they finish.
func (c *Client) Suite(ctx context.Context, req SuiteRequest) (*SuiteReport, error) {
	return c.runSuite(ctx, req, nil)
}

// SuiteObserved plays the matrix like Suite while also delivering each
// cell to fn as it finishes (SuiteStream's delivery contract: serial,
// completion order, a non-nil error cancels the rest) and still
// returning the monolithic report. This is the shape progress-tracking
// callers — the async jobs tier above all — need: live per-cell events
// plus the byte-stable final report. A nil fn makes it exactly Suite.
func (c *Client) SuiteObserved(ctx context.Context, req SuiteRequest, fn func(SuiteCell) error) (*SuiteReport, error) {
	return c.runSuite(ctx, req, fn)
}

// SuiteStream is Suite delivering each SuiteCell to fn as it finishes
// instead of one monolithic report — the shape long-running matrix
// consumers (progress UIs, NDJSON responses) want. fn is called
// serially (never concurrently) but in completion order, which is not
// report order; cells identify themselves by scenario and protocol. A
// non-nil error from fn cancels the remaining cells and is returned.
//
// The cells fn sees are exactly the cells a plain Suite call would
// report — streaming changes delivery, not content.
func (c *Client) SuiteStream(ctx context.Context, req SuiteRequest, fn func(SuiteCell) error) error {
	if fn == nil {
		return fmt.Errorf("edmac: SuiteStream needs a cell callback")
	}
	_, err := c.runSuite(ctx, req, fn)
	return err
}
