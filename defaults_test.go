package edmac

import "testing"

// TestEffectiveDefaults pins the one defaulting path: what an unset
// (or nonsensical) option field means, everywhere options are
// resolved — legacy wrappers and Client alike.
func TestEffectiveDefaults(t *testing.T) {
	if DefaultSimDuration != 1800 {
		t.Errorf("DefaultSimDuration = %v, want 1800", DefaultSimDuration)
	}
	if DefaultSuiteDuration != 400 {
		t.Errorf("DefaultSuiteDuration = %v, want 400", DefaultSuiteDuration)
	}
	if DefaultEnergyBudget() != 0.06 {
		t.Errorf("DefaultEnergyBudget = %v, want 0.06", DefaultEnergyBudget())
	}

	sim := SimOptions{}.withDefaults()
	if sim.Duration != DefaultSimDuration {
		t.Errorf("sim duration = %v, want %v", sim.Duration, DefaultSimDuration)
	}
	if sim.Seed != 0 {
		t.Errorf("sim seed was defaulted to %d; 0 is a real seed", sim.Seed)
	}
	if d := (SimOptions{Duration: -3}).withDefaults().Duration; d != DefaultSimDuration {
		t.Errorf("negative sim duration resolved to %v", d)
	}
	if d := (SimOptions{Duration: 25}).withDefaults().Duration; d != 25 {
		t.Errorf("explicit sim duration overridden to %v", d)
	}

	suite := SuiteOptions{}.withDefaults()
	if suite.Duration != DefaultSuiteDuration {
		t.Errorf("suite duration = %v, want %v", suite.Duration, DefaultSuiteDuration)
	}
	if suite.EnergyBudget != DefaultEnergyBudget() {
		t.Errorf("suite energy budget = %v, want %v", suite.EnergyBudget, DefaultEnergyBudget())
	}
	// MaxDelay 0 is the documented "scale with scenario depth"
	// convention, Workers < 1 the "one per CPU" convention — neither may
	// be rewritten here.
	if suite.MaxDelay != 0 || suite.Workers != 0 || suite.Seed != 0 || suite.Adaptive {
		t.Errorf("suite defaults touched convention fields: %+v", suite)
	}
	full := SuiteOptions{Duration: 12, Seed: 9, Workers: 2, EnergyBudget: 0.02, MaxDelay: 4, Adaptive: true}
	if got := full.withDefaults(); got != full {
		t.Errorf("explicit suite options rewritten: %+v", got)
	}
}

// TestDefaultPositive pins the shared defaulting rule itself.
func TestDefaultPositive(t *testing.T) {
	for _, tc := range []struct{ v, def, want float64 }{
		{0, 7, 7},
		{-1, 7, 7},
		{3, 7, 3},
		{0.0001, 7, 0.0001},
	} {
		if got := defaultPositive(tc.v, tc.def); got != tc.want {
			t.Errorf("defaultPositive(%v, %v) = %v, want %v", tc.v, tc.def, got, tc.want)
		}
	}
}
