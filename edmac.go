// Package edmac balances energy consumption against end-to-end packet
// delay in duty-cycled wireless sensor network MAC protocols, using the
// cooperative-game framework of Doudou et al., "Game Theoretical
// Approach for Energy-Delay Balancing in Distributed Duty-Cycled MAC
// Protocols of Wireless Networks" (PODC 2014).
//
// Given an application's requirements — an energy budget per node and a
// maximum tolerated end-to-end delay — the framework computes, for a
// chosen protocol (X-MAC, DMAC, LMAC, B-MAC, or SCP-MAC):
//
//   - the energy-optimal configuration (problem P1),
//   - the delay-optimal configuration (problem P2), and
//   - the Nash Bargaining Solution (problems P3/P4): the fair compromise
//     between the two virtual players Energy and Delay, together with
//     the concrete MAC parameters that realize it.
//
// A packet-level discrete-event simulator (Client.Simulate) replays
// any configuration on an explicit network and cross-checks the analytic
// models.
//
// The entry point is the Client, constructed with functional options
// and exposing the whole pipeline as (ctx, Request) → (Report, error):
//
//	client, err := edmac.NewClient(edmac.WithCache(edmac.DefaultCacheSize))
//	if err != nil { ... }
//	rep, err := client.Optimize(ctx, edmac.OptimizeRequest{
//	    Protocol:     edmac.XMAC,
//	    Requirements: edmac.Requirements{EnergyBudget: 0.06, MaxDelay: 6},
//	})
//	if err != nil { ... }
//	fmt.Println(rep.Result.Bargain.Params) // wakeup interval to deploy
//
// The original top-level functions (Optimize, Simulate, RunSuite, ...)
// remain as deprecated wrappers over a package-default client and
// behave exactly as they always have. cmd/edserve serves the same
// Client API over HTTP/JSON.
package edmac

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/nbs"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// Protocol identifies a supported duty-cycled MAC protocol.
type Protocol string

// The supported protocols. XMAC, DMAC and LMAC are the three the paper
// evaluates; BMAC (classic low-power listening) and SCPMAC (scheduled
// channel polling, the fourth duty-cycling category from the paper's
// related work) are extensions demonstrating the framework's
// protocol-agnosticism.
const (
	XMAC   Protocol = "xmac"
	DMAC   Protocol = "dmac"
	LMAC   Protocol = "lmac"
	BMAC   Protocol = "bmac"
	SCPMAC Protocol = "scpmac"
)

// Protocols lists every supported protocol in presentation order.
func Protocols() []Protocol {
	return []Protocol{XMAC, DMAC, LMAC, BMAC, SCPMAC}
}

// PaperProtocols lists the three protocols of the paper's evaluation.
func PaperProtocols() []Protocol {
	return []Protocol{XMAC, DMAC, LMAC}
}

// ErrInfeasible reports that no parameter setting of the protocol meets
// the stated requirements; test with errors.Is.
var ErrInfeasible = nbs.ErrInfeasible

// Scenario describes the deployment the models are evaluated in. The
// JSON tags define the wire form the edserve request schema uses.
type Scenario struct {
	// Depth is the number of rings D: the farthest nodes are D hops from
	// the sink.
	Depth int `json:"depth"`
	// Density is the unit-disk neighbourhood density C.
	Density int `json:"density"`
	// SampleInterval is the time between application samples per node,
	// in seconds (the inverse of the paper's Fs).
	SampleInterval float64 `json:"sample_interval"`
	// Window is the energy-accounting window in seconds; reported
	// energies are joules per window at the bottleneck node.
	Window float64 `json:"window"`
	// Payload is the application payload in bytes.
	Payload int `json:"payload"`
	// Radio names the transceiver profile: "cc2420" or "cc1101".
	Radio string `json:"radio"`
	// LinkPRR is the per-link packet reception ratio the analytic models
	// assume on every hop. The zero value means 1 (perfect links); below
	// 1 the models charge each hop the expected retransmission attempts,
	// so the bargain reacts to link quality.
	LinkPRR float64 `json:"link_prr,omitempty"`
}

// DefaultScenario returns the calibrated scenario of the paper
// reproduction: a depth-5, density-6 CC2420 network sampling once per
// 10 hours, with energy accounted per minute (see DESIGN.md §3.1).
func DefaultScenario() Scenario {
	env := macmodel.Default()
	return Scenario{
		Depth:          env.Rings.Depth,
		Density:        env.Rings.Density,
		SampleInterval: 1 / env.SampleRate,
		Window:         env.Window,
		Payload:        env.Payload,
		Radio:          env.Radio.Name,
	}
}

// env converts the scenario into the internal model environment.
func (s Scenario) env() (macmodel.Env, error) {
	prof, err := radio.Profile(s.Radio)
	if err != nil {
		return macmodel.Env{}, err
	}
	if s.SampleInterval <= 0 {
		return macmodel.Env{}, fmt.Errorf("edmac: sample interval %v must be positive", s.SampleInterval)
	}
	env := macmodel.Env{
		Radio:      prof,
		Rings:      topology.RingModel{Depth: s.Depth, Density: s.Density},
		SampleRate: 1 / s.SampleInterval,
		Window:     s.Window,
		Payload:    s.Payload,
		LinkPRR:    s.LinkPRR,
	}
	if err := env.Validate(); err != nil {
		return macmodel.Env{}, err
	}
	return env, nil
}

// model builds the analytic model for a protocol under the scenario.
func (s Scenario) model(p Protocol) (macmodel.Model, error) {
	env, err := s.env()
	if err != nil {
		return nil, err
	}
	return macmodel.New(string(p), env)
}

// Requirements are the application inputs of the game.
type Requirements struct {
	// EnergyBudget is Ebudget: joules per window the bottleneck node may
	// spend.
	EnergyBudget float64 `json:"energy_budget"`
	// MaxDelay is Lmax: the end-to-end delay bound in seconds.
	MaxDelay float64 `json:"max_delay"`
}

// PaperRequirements returns the headline requirement pair of the paper's
// figures: Ebudget = 0.06 J, Lmax = 6 s.
func PaperRequirements() Requirements {
	return Requirements{EnergyBudget: core.PaperEnergyBudget, MaxDelay: core.PaperMaxDelay}
}

// ParamSpec documents one tunable protocol parameter.
type ParamSpec struct {
	// Name identifies the parameter (e.g. "wakeup-interval").
	Name string `json:"name"`
	// Unit is its physical unit (e.g. "s").
	Unit string `json:"unit"`
	// Min and Max delimit the admissible range.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Params returns the tunable parameter table of a protocol under the
// scenario, in the order used by every Params slice in this package.
//
// Deprecated: use (*Client).Params; this wrapper delegates to the
// package-default client and behaves identically.
func Params(p Protocol, s Scenario) ([]ParamSpec, error) {
	rep, err := defaultClient().Params(context.Background(),
		ParamsRequest{Protocol: p, Scenario: &s})
	return rep.Params, err
}

// paramSpecs builds the parameter table behind Client.Params.
func paramSpecs(p Protocol, s Scenario) ([]ParamSpec, error) {
	m, err := s.model(p)
	if err != nil {
		return nil, err
	}
	specs := m.Params()
	out := make([]ParamSpec, len(specs))
	for i, sp := range specs {
		out[i] = ParamSpec{Name: sp.Name, Unit: sp.Unit, Min: sp.Min, Max: sp.Max}
	}
	return out, nil
}

// OperatingPoint is a concrete protocol configuration with its metrics.
type OperatingPoint struct {
	// Params is the protocol parameter vector (see Params for meaning).
	Params []float64 `json:"params"`
	// Energy is joules per window at the bottleneck node.
	Energy float64 `json:"energy"`
	// Delay is the worst-case expected end-to-end delay in seconds.
	Delay float64 `json:"delay"`
}

// Result is the outcome of playing the energy-delay game.
type Result struct {
	// Protocol echoes the protocol played.
	Protocol Protocol `json:"protocol"`
	// Requirements echoes the application inputs.
	Requirements Requirements `json:"requirements"`
	// EnergyOptimal is the P1 solution: (Ebest, Lworst).
	EnergyOptimal OperatingPoint `json:"energy_optimal"`
	// DelayOptimal is the P2 solution: (Eworst, Lbest).
	DelayOptimal OperatingPoint `json:"delay_optimal"`
	// WorstEnergy and WorstDelay form the disagreement (threat) point.
	WorstEnergy float64 `json:"worst_energy"`
	WorstDelay  float64 `json:"worst_delay"`
	// Bargain is the Nash Bargaining Solution — the configuration the
	// framework recommends deploying.
	Bargain OperatingPoint `json:"bargain"`
	// FairnessEnergy and FairnessDelay are the proportional-fairness
	// coordinates of the bargain (equal on linear frontiers).
	FairnessEnergy float64 `json:"fairness_energy"`
	FairnessDelay  float64 `json:"fairness_delay"`
	// Degenerate reports that the game offered no strict joint
	// improvement over the disagreement point.
	Degenerate bool `json:"degenerate,omitempty"`
	// BudgetExceeded reports (relaxed mode only) that the requirements
	// were jointly unattainable and Bargain is the best-effort point
	// honouring MaxDelay while exceeding EnergyBudget.
	BudgetExceeded bool `json:"budget_exceeded,omitempty"`
}

// Optimize plays the full game for one protocol, failing with
// ErrInfeasible when the requirements cannot be met.
//
// Deprecated: use (*Client).Optimize, which adds context cancellation
// and result caching; this wrapper delegates to the package-default
// client and behaves identically.
func Optimize(p Protocol, s Scenario, r Requirements) (Result, error) {
	rep, err := defaultClient().Optimize(context.Background(),
		OptimizeRequest{Protocol: p, Scenario: &s, Requirements: r})
	return rep.Result, err
}

// OptimizeRelaxed is Optimize with the paper's figure behaviour for
// over-constrained requirements: instead of failing it returns the
// best-effort point flagged via Result.BudgetExceeded.
//
// Deprecated: use (*Client).Optimize with OptimizeRequest.Relaxed;
// this wrapper delegates to the package-default client and behaves
// identically.
func OptimizeRelaxed(p Protocol, s Scenario, r Requirements) (Result, error) {
	rep, err := defaultClient().Optimize(context.Background(),
		OptimizeRequest{Protocol: p, Scenario: &s, Requirements: r, Relaxed: true})
	return rep.Result, err
}

func optimize(p Protocol, s Scenario, r Requirements, relaxed bool) (Result, error) {
	m, err := s.model(p)
	if err != nil {
		return Result{}, err
	}
	req := core.Requirements{EnergyBudget: r.EnergyBudget, MaxDelay: r.MaxDelay}
	var tr core.Tradeoff
	if relaxed {
		tr, err = core.OptimizeRelaxed(m, req)
	} else {
		tr, err = core.Optimize(m, req)
	}
	if err != nil {
		return Result{}, err
	}
	return resultOf(p, r, tr), nil
}

func resultOf(p Protocol, r Requirements, tr core.Tradeoff) Result {
	return Result{
		Protocol:       p,
		Requirements:   r,
		EnergyOptimal:  opOf(tr.EnergyOptimal),
		DelayOptimal:   opOf(tr.DelayOptimal),
		WorstEnergy:    tr.WorstEnergy,
		WorstDelay:     tr.WorstDelay,
		Bargain:        opOf(tr.Bargain),
		FairnessEnergy: tr.FairnessEnergy,
		FairnessDelay:  tr.FairnessDelay,
		Degenerate:     tr.Degenerate,
		BudgetExceeded: tr.BudgetExceeded,
	}
}

func opOf(pt core.OperatingPoint) OperatingPoint {
	return OperatingPoint{Params: []float64(pt.Params.Clone()), Energy: pt.Energy, Delay: pt.Delay}
}

// FrontierPoint is one point of a protocol's energy-delay Pareto curve.
type FrontierPoint struct {
	Params []float64 `json:"params"`
	Energy float64   `json:"energy"`
	Delay  float64   `json:"delay"`
}

// Frontier traces a protocol's Pareto frontier up to the delay bound —
// the continuous curves in the paper's figures — with n sweep points.
//
// Deprecated: use (*Client).Frontier; this wrapper delegates to the
// package-default client and behaves identically.
func Frontier(p Protocol, s Scenario, r Requirements, n int) ([]FrontierPoint, error) {
	rep, err := defaultClient().Frontier(context.Background(),
		FrontierRequest{Protocol: p, Scenario: &s, Requirements: r, Points: n})
	return rep.Points, err
}

// frontier is the uncached frontier tracer behind Client.Frontier,
// cancellable at point granularity.
func frontier(ctx context.Context, p Protocol, s Scenario, r Requirements, n int) ([]FrontierPoint, error) {
	m, err := s.model(p)
	if err != nil {
		return nil, err
	}
	pts, err := core.FrontierContext(ctx, m, core.Requirements{EnergyBudget: r.EnergyBudget, MaxDelay: r.MaxDelay}, n)
	if err != nil {
		return nil, err
	}
	out := make([]FrontierPoint, len(pts))
	for i, pt := range pts {
		out[i] = FrontierPoint{Params: []float64(pt.X.Clone()), Energy: pt.A, Delay: pt.B}
	}
	return out, nil
}

// Comparison is one protocol's entry in a Compare run. Err is non-nil
// (wrapping ErrInfeasible) for protocols that cannot meet the
// requirements even in relaxed mode — failed protocols are reported,
// never silently dropped, so a comparison always has one entry per
// protocol played.
type Comparison struct {
	Protocol Protocol
	Result   Result
	Err      error
}

// MarshalJSON encodes the comparison with Err surfaced as its message
// string (the error interface itself has no useful JSON form), so wire
// consumers see infeasible protocols explicitly.
func (c Comparison) MarshalJSON() ([]byte, error) {
	w := struct {
		Protocol Protocol `json:"protocol"`
		Result   *Result  `json:"result,omitempty"`
		Error    string   `json:"error,omitempty"`
	}{Protocol: c.Protocol}
	if c.Err != nil {
		w.Error = c.Err.Error()
	} else {
		w.Result = &c.Result
	}
	return json.Marshal(w)
}

// Compare plays the game for every paper protocol under the same
// requirements (relaxed mode, as in the figures) and returns one entry
// per protocol in presentation order.
//
// Deprecated: use (*Client).Compare, which also surfaces the winner;
// this wrapper delegates to the package-default client and behaves
// identically.
func Compare(s Scenario, r Requirements) []Comparison {
	rep, _ := defaultClient().Compare(context.Background(),
		CompareRequest{Scenario: &s, Requirements: r})
	return rep.Comparisons
}

// Best returns the comparison entry whose bargain has the lowest energy
// among those meeting the requirements outright, or false when none do.
func Best(comparisons []Comparison) (Comparison, bool) {
	var best Comparison
	found := false
	for _, c := range comparisons {
		if c.Err != nil || c.Result.BudgetExceeded || c.Result.Degenerate {
			continue
		}
		if !found || c.Result.Bargain.Energy < best.Result.Bargain.Energy {
			best = c
			found = true
		}
	}
	return best, found
}

// vec converts a public parameter slice into the internal vector,
// checking arity against the protocol's specification.
func vec(m macmodel.Model, params []float64) (opt.Vector, error) {
	if len(params) != len(m.Params()) {
		return nil, fmt.Errorf("edmac: %s expects %d parameters, got %d",
			m.Name(), len(m.Params()), len(params))
	}
	return opt.Vector(append([]float64(nil), params...)), nil
}

// Evaluate returns the analytic energy and delay of an explicit
// parameter vector — useful for what-if exploration around an optimum.
//
// Deprecated: use (*Client).Evaluate; this wrapper delegates to the
// package-default client and behaves identically.
func Evaluate(p Protocol, s Scenario, params []float64) (energy, delay float64, err error) {
	rep, err := defaultClient().Evaluate(context.Background(),
		EvaluateRequest{Protocol: p, Scenario: &s, Params: params})
	return rep.Energy, rep.Delay, err
}

// evaluate is the model evaluation behind Client.Evaluate.
func evaluate(p Protocol, s Scenario, params []float64) (energy, delay float64, err error) {
	m, err := s.model(p)
	if err != nil {
		return 0, 0, err
	}
	x, err := vec(m, params)
	if err != nil {
		return 0, 0, err
	}
	if !m.Bounds().Contains(x) {
		return 0, 0, fmt.Errorf("edmac: parameters %v outside the admissible box", params)
	}
	return m.Energy(x), m.Delay(x), nil
}
