package edmac_test

import (
	"errors"
	"math"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

func TestOptimizeXMACPaperRequirements(t *testing.T) {
	res, err := edmac.Optimize(edmac.XMAC, edmac.DefaultScenario(), edmac.PaperRequirements())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Protocol != edmac.XMAC {
		t.Errorf("protocol = %v", res.Protocol)
	}
	if len(res.Bargain.Params) != 1 {
		t.Fatalf("xmac bargain params = %v, want 1 value", res.Bargain.Params)
	}
	if res.Bargain.Energy > 0.06+1e-9 || res.Bargain.Delay > 6+1e-9 {
		t.Errorf("bargain (%v J, %v s) violates requirements", res.Bargain.Energy, res.Bargain.Delay)
	}
	if res.BudgetExceeded || res.Degenerate {
		t.Errorf("unexpected flags: exceeded=%v degenerate=%v", res.BudgetExceeded, res.Degenerate)
	}
	// The bargain interpolates between the two optima.
	if res.Bargain.Energy < res.EnergyOptimal.Energy-1e-9 {
		t.Error("bargain beats the energy optimum")
	}
	if res.Bargain.Delay < res.DelayOptimal.Delay-1e-9 {
		t.Error("bargain beats the delay optimum")
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	_, err := edmac.Optimize(edmac.XMAC, edmac.DefaultScenario(),
		edmac.Requirements{EnergyBudget: 1e-9, MaxDelay: 1e-3})
	if !errors.Is(err, edmac.ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

// TestProtocolRegistryInSync guards against drift between the facade's
// protocol list and the internal model registry.
func TestProtocolRegistryInSync(t *testing.T) {
	for _, p := range edmac.Protocols() {
		if _, err := edmac.Params(p, edmac.DefaultScenario()); err != nil {
			t.Errorf("protocol %s not constructible: %v", p, err)
		}
	}
}

func TestOptimizeAllProtocols(t *testing.T) {
	for _, p := range edmac.Protocols() {
		res, err := edmac.Optimize(p, edmac.DefaultScenario(),
			edmac.Requirements{EnergyBudget: 2, MaxDelay: 6})
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		specs, err := edmac.Params(p, edmac.DefaultScenario())
		if err != nil {
			t.Fatalf("%s: Params: %v", p, err)
		}
		if len(res.Bargain.Params) != len(specs) {
			t.Errorf("%s: %d params vs %d specs", p, len(res.Bargain.Params), len(specs))
		}
		for i, v := range res.Bargain.Params {
			if v < specs[i].Min-1e-9 || v > specs[i].Max+1e-9 {
				t.Errorf("%s: param %s = %v outside [%v, %v]",
					p, specs[i].Name, v, specs[i].Min, specs[i].Max)
			}
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := edmac.DefaultScenario()
	bad.Radio = "nrf24"
	if _, err := edmac.Optimize(edmac.XMAC, bad, edmac.PaperRequirements()); err == nil {
		t.Error("unknown radio accepted")
	}
	bad = edmac.DefaultScenario()
	bad.SampleInterval = 0
	if _, err := edmac.Optimize(edmac.XMAC, bad, edmac.PaperRequirements()); err == nil {
		t.Error("zero sample interval accepted")
	}
	bad = edmac.DefaultScenario()
	bad.Depth = 0
	if _, err := edmac.Optimize(edmac.XMAC, bad, edmac.PaperRequirements()); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestFrontierMonotone(t *testing.T) {
	pts, err := edmac.Frontier(edmac.XMAC, edmac.DefaultScenario(), edmac.PaperRequirements(), 10)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	if len(pts) < 5 {
		t.Fatalf("frontier too sparse: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Delay < pts[i-1].Delay-1e-9 {
			t.Error("frontier not sorted by delay")
		}
		if pts[i].Energy > pts[i-1].Energy+1e-9 {
			t.Error("frontier energy not non-increasing")
		}
	}
}

func TestCompareAndBest(t *testing.T) {
	comps := edmac.Compare(edmac.DefaultScenario(), edmac.PaperRequirements())
	if len(comps) != 3 {
		t.Fatalf("Compare returned %d entries", len(comps))
	}
	best, ok := edmac.Best(comps)
	if !ok {
		t.Fatal("no feasible protocol under the paper requirements")
	}
	if best.Protocol != edmac.XMAC {
		t.Errorf("best protocol = %v, want xmac (lowest-energy bargain)", best.Protocol)
	}
}

func TestEvaluate(t *testing.T) {
	s := edmac.DefaultScenario()
	e, l, err := edmac.Evaluate(edmac.XMAC, s, []float64{0.5})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if e <= 0 || l <= 0 {
		t.Errorf("Evaluate = (%v, %v), want positive metrics", e, l)
	}
	if _, _, err := edmac.Evaluate(edmac.XMAC, s, []float64{0.5, 1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, _, err := edmac.Evaluate(edmac.XMAC, s, []float64{99}); err == nil {
		t.Error("out-of-box parameters accepted")
	}
}

func TestOptimizeRelaxedFlagsBestEffort(t *testing.T) {
	// LMAC at (0.01 J, 6 s) is jointly unattainable; the relaxed call
	// must return a flagged best-effort point, the strict call must fail.
	s := edmac.DefaultScenario()
	r := edmac.Requirements{EnergyBudget: 0.01, MaxDelay: 6}
	if _, err := edmac.Optimize(edmac.LMAC, s, r); !errors.Is(err, edmac.ErrInfeasible) {
		t.Fatalf("strict error = %v, want ErrInfeasible", err)
	}
	res, err := edmac.OptimizeRelaxed(edmac.LMAC, s, r)
	if err != nil {
		t.Fatalf("relaxed: %v", err)
	}
	if !res.BudgetExceeded {
		t.Error("BudgetExceeded not set")
	}
	if res.Bargain.Delay > 6+1e-9 {
		t.Errorf("best-effort point must honour MaxDelay, got %v s", res.Bargain.Delay)
	}
}

func TestSimulateQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := edmac.DefaultScenario()
	s.Depth = 3
	s.Density = 3
	s.SampleInterval = 120
	rep, err := edmac.Simulate(edmac.XMAC, s, []float64{0.25}, edmac.SimOptions{Duration: 600, Seed: 1})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if rep.Generated == 0 || rep.DeliveryRatio < 0.8 {
		t.Errorf("delivery %v of %d packets", rep.DeliveryRatio, rep.Generated)
	}
	if rep.BottleneckEnergy <= 0 {
		t.Error("no energy measured")
	}
}

func TestSimulateRejectsSCPMAC(t *testing.T) {
	if _, err := edmac.Simulate(edmac.SCPMAC, edmac.DefaultScenario(), []float64{0.5}, edmac.SimOptions{}); err == nil {
		t.Error("scpmac simulation accepted")
	}
}

func TestValidateFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := edmac.DefaultScenario()
	s.Depth = 3
	s.Density = 3
	s.SampleInterval = 120
	rep, err := edmac.Validate(edmac.XMAC, s, []float64{0.25}, edmac.SimOptions{Duration: 900, Seed: 2})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.IsNaN(rep.EnergyRatio) || rep.EnergyRatio < 0.3 || rep.EnergyRatio > 3 {
		t.Errorf("energy ratio %v implausible", rep.EnergyRatio)
	}
	if math.IsNaN(rep.DelayRatio) || rep.DelayRatio < 0.3 || rep.DelayRatio > 3 {
		t.Errorf("delay ratio %v implausible", rep.DelayRatio)
	}
}
