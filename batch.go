package edmac

import (
	"context"
	"encoding/json"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/sim"
	"github.com/edmac-project/edmac/internal/topology"
)

// BatchRun describes one simulation of a batch: a protocol, its
// parameter vector and the run options (duration, seed).
type BatchRun struct {
	Protocol Protocol   `json:"protocol"`
	Params   []float64  `json:"params"`
	Options  SimOptions `json:"options,omitempty"`
}

// BatchOutcome is one BatchRun's result. Err is non-nil when the run
// could not be configured or executed; Report is valid otherwise.
type BatchOutcome struct {
	Run    BatchRun
	Report SimReport
	Err    error
}

// MarshalJSON encodes the outcome with Err surfaced as its message
// string (as Comparison does), so wire consumers see failed runs
// explicitly instead of a zero report.
func (o BatchOutcome) MarshalJSON() ([]byte, error) {
	w := struct {
		Run    BatchRun   `json:"run"`
		Report *SimReport `json:"report,omitempty"`
		Error  string     `json:"error,omitempty"`
	}{Run: o.Run}
	if o.Err != nil {
		w.Error = o.Err.Error()
	} else {
		w.Report = &o.Report
	}
	return json.Marshal(w)
}

// SimulateBatch executes independent simulation runs concurrently on a
// worker pool (one worker per CPU when workers < 1) and returns one
// outcome per run, in input order.
//
// Each run owns its entire simulation state, so the reports are
// bit-identical to calling Simulate sequentially with the same inputs —
// the batch only buys wall-clock time, scaling near-linearly with cores
// until the runs outnumber them. Typical uses are Monte-Carlo
// replication (same configuration, many seeds — see SimulateSeeds) and
// configuration studies (different parameter vectors or protocols under
// one scenario).
//
// Cancelling ctx abandons runs not yet started and aborts runs in
// flight; their outcomes carry ctx.Err(). A nil ctx means
// context.Background().
//
// Deprecated: use (*Client).Batch; this wrapper delegates to the
// package-default client and behaves identically.
func SimulateBatch(ctx context.Context, s Scenario, runs []BatchRun, workers int) []BatchOutcome {
	rep, _ := defaultClient().Batch(ctx, BatchRequest{Scenario: &s, Runs: runs, Workers: workers})
	return rep.Outcomes
}

// simulateBatch is the fan-out behind Client.Batch: every run's seed is
// folded with the client's base seed, configs are validated up front,
// and the independent runs execute on the shared worker pool.
func simulateBatch(ctx context.Context, s Scenario, runs []BatchRun, workers int, baseSeed int64) []BatchOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchOutcome, len(runs))
	cfgs := make([]sim.Config, 0, len(runs))
	cfgIdx := make([]int, 0, len(runs)) // batch index of each config
	envs := make([]macmodel.Env, len(runs))
	nets := make([]*topology.Network, len(runs))
	for i, r := range runs {
		out[i].Run = r
		opts := r.Options
		opts.Seed ^= baseSeed
		cfg, env, net, err := prepareSim(r.Protocol, s, r.Params, opts)
		if err != nil {
			out[i].Err = err
			continue
		}
		// One batch = one scenario, and every run's network is the same
		// deterministic placement — share the first run's network object
		// across the batch so the materialized world below applies to
		// every rep. Networks are immutable; results are unchanged.
		if len(cfgs) > 0 {
			cfg.Network = cfgs[0].Network
			net = nets[cfgIdx[0]]
		}
		cfgs = append(cfgs, cfg)
		cfgIdx = append(cfgIdx, i)
		envs[i] = env
		nets[i] = net
	}
	// Materialize the shared world once: neighbour tables, link tables
	// and (for LMAC) the slot plan stop being re-derived per rep. Tables
	// that do not match a particular rep (a different seed's arrivals, a
	// re-bargained slot count) are ignored by that rep, never misapplied.
	if len(cfgs) > 0 {
		if shared, err := sim.Materialize(cfgs[0]); err == nil {
			for j := range cfgs {
				cfgs[j].Shared = shared
			}
		}
	}
	results := sim.RunBatch(ctx, cfgs, workers)
	for j, br := range results {
		i := cfgIdx[j]
		if br.Err != nil {
			out[i].Err = br.Err
			continue
		}
		out[i].Report = simReportOf(runs[i].Protocol, runs[i].Params, cfgs[j].Seed,
			envs[i].Rings.Depth, envs[i].Window, nets[i], br.Result)
	}
	return out
}

// SimulateSeeds replays one configuration under every given seed
// concurrently — the Monte-Carlo fan-out behind replicated validation.
// It is SimulateBatch over runs that differ only in SimOptions.Seed.
//
// Deprecated: use (*Client).Batch with per-run seeds; this wrapper
// delegates to the package-default client and behaves identically.
func SimulateSeeds(ctx context.Context, p Protocol, s Scenario, params []float64, o SimOptions, seeds []int64, workers int) []BatchOutcome {
	runs := make([]BatchRun, len(seeds))
	for i, seed := range seeds {
		opts := o
		opts.Seed = seed
		runs[i] = BatchRun{Protocol: p, Params: params, Options: opts}
	}
	return SimulateBatch(ctx, s, runs, workers)
}
