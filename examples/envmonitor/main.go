// Envmonitor: a long-lived environmental monitoring network — the
// "very low data rate" regime the analytic models target. Deadlines are
// loose (minutes would be fine), the battery budget is everything, and
// the example shows the energy player dominating the agreement as the
// deadline relaxes, plus the lifetime implied by each operating point.
//
//	go run ./examples/envmonitor
package main

import (
	"fmt"
	"log"

	edmac "github.com/edmac-project/edmac"
)

// batteryJ is the usable energy of a pair of AA cells in joules.
const batteryJ = 10000.0

func main() {
	scenario := edmac.DefaultScenario()
	scenario.SampleInterval = 3600 // one sample per node per hour
	budget := 0.015                // 15 mJ per minute -> years of lifetime

	fmt.Println("Environmental monitoring: Ebudget = 15 mJ/min, one sample/h")
	fmt.Printf("%-12s %-12s %-10s %-12s %s\n", "deadline", "E* [J/min]", "L* [s]", "lifetime", "note")
	for _, deadline := range []float64{1, 5, 15, 60} {
		req := edmac.Requirements{EnergyBudget: budget, MaxDelay: deadline}
		res, err := edmac.OptimizeRelaxed(edmac.XMAC, scenario, req)
		if err != nil {
			log.Fatalf("deadline %g: %v", deadline, err)
		}
		note := ""
		if res.BudgetExceeded {
			note = "budget exceeded (best effort)"
		}
		fmt.Printf("%-12s %-12.4g %-10.4g %-12s %s\n",
			fmt.Sprintf("%g s", deadline), res.Bargain.Energy, res.Bargain.Delay,
			lifetime(res.Bargain.Energy), note)
	}

	// The headline of this regime: compare the protocols at a relaxed
	// one-minute deadline. X-MAC's traffic-proportional cost wins when
	// samples are this rare; LMAC's control tracking never amortizes.
	fmt.Println("\nProtocol comparison at a 60 s deadline:")
	req := edmac.Requirements{EnergyBudget: budget, MaxDelay: 60}
	for _, c := range edmac.Compare(scenario, req) {
		if c.Err != nil {
			fmt.Printf("  %-5s infeasible\n", c.Protocol)
			continue
		}
		note := ""
		if c.Result.BudgetExceeded {
			note = " (budget exceeded)"
		}
		fmt.Printf("  %-5s E=%.4g J/min  L=%.3g s  lifetime %s%s\n",
			c.Protocol, c.Result.Bargain.Energy, c.Result.Bargain.Delay,
			lifetime(c.Result.Bargain.Energy), note)
	}
}

// lifetime renders the node lifetime implied by a per-minute energy.
func lifetime(joulesPerMinute float64) string {
	minutes := batteryJ / joulesPerMinute
	days := minutes / 60 / 24
	if days > 730 {
		return fmt.Sprintf("%.1f years", days/365)
	}
	return fmt.Sprintf("%.0f days", days)
}
