// Protocolpick: sweep a grid of application requirements and print which
// protocol the framework would deploy in each cell — a design-space map
// of the kind the paper's introduction says system designers currently
// build "based on repeated real experiences".
//
//	go run ./examples/protocolpick
package main

import (
	"fmt"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	scenario := edmac.DefaultScenario()
	budgets := []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	deadlines := []float64{0.5, 1, 2, 4, 8}

	fmt.Println("Best protocol per requirement cell (rows: Ebudget J/min, cols: Lmax s)")
	fmt.Printf("%-10s", "")
	for _, d := range deadlines {
		fmt.Printf("%-10s", fmt.Sprintf("%gs", d))
	}
	fmt.Println()
	for _, b := range budgets {
		fmt.Printf("%-10s", fmt.Sprintf("%gJ", b))
		for _, d := range deadlines {
			req := edmac.Requirements{EnergyBudget: b, MaxDelay: d}
			comps := edmac.Compare(scenario, req)
			if best, ok := edmac.Best(comps); ok {
				fmt.Printf("%-10s", best.Protocol)
			} else {
				fmt.Printf("%-10s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Println("\n'-' marks cells no protocol satisfies outright in this scenario.")

	// Zoom into one contested cell and show the numbers behind the pick.
	req := edmac.Requirements{EnergyBudget: 0.02, MaxDelay: 1}
	fmt.Printf("\nDetail for (%.3g J, %g s):\n", req.EnergyBudget, req.MaxDelay)
	for _, c := range edmac.Compare(scenario, req) {
		if c.Err != nil {
			fmt.Printf("  %-5s infeasible\n", c.Protocol)
			continue
		}
		note := ""
		if c.Result.BudgetExceeded {
			note = " (budget exceeded)"
		}
		fmt.Printf("  %-5s bargain E=%.4g J L=%.3g s%s\n",
			c.Protocol, c.Result.Bargain.Energy, c.Result.Bargain.Delay, note)
	}
}
