// Quickstart: optimize one protocol for an application's energy budget
// and delay bound, and read back the MAC parameters to deploy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	// The deployment: a depth-5 CC2420 sensor network sampling once per
	// 10 hours (the calibrated default of the paper reproduction).
	scenario := edmac.DefaultScenario()

	// The application requires at most 0.06 J per minute at the
	// bottleneck node and end-to-end delivery within 6 seconds — the
	// paper's headline requirement pair.
	req := edmac.PaperRequirements()

	res, err := edmac.Optimize(edmac.XMAC, scenario, req)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}

	specs, err := edmac.Params(edmac.XMAC, scenario)
	if err != nil {
		log.Fatalf("params: %v", err)
	}

	fmt.Println("X-MAC energy-delay game under (0.06 J, 6 s):")
	fmt.Printf("  energy player's optimum : E=%.4g J  L=%.3g s\n",
		res.EnergyOptimal.Energy, res.EnergyOptimal.Delay)
	fmt.Printf("  delay player's optimum  : E=%.4g J  L=%.3g s\n",
		res.DelayOptimal.Energy, res.DelayOptimal.Delay)
	fmt.Printf("  threat point            : E=%.4g J  L=%.3g s\n",
		res.WorstEnergy, res.WorstDelay)
	fmt.Printf("  Nash bargain (deploy!)  : E=%.4g J  L=%.3g s\n",
		res.Bargain.Energy, res.Bargain.Delay)
	for i, sp := range specs {
		fmt.Printf("      %s = %.4g %s\n", sp.Name, res.Bargain.Params[i], sp.Unit)
	}
	fmt.Printf("  proportional fairness   : energy %.2f, delay %.2f\n",
		res.FairnessEnergy, res.FairnessDelay)

	// What-if: how much energy does halving the bargained wakeup
	// interval cost, and what does it buy in latency?
	half := []float64{res.Bargain.Params[0] / 2}
	e, l, err := edmac.Evaluate(edmac.XMAC, scenario, half)
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Printf("\nWhat-if (half the wakeup interval): E=%.4g J (+%.0f%%), L=%.3g s (%.0f%%)\n",
		e, 100*(e/res.Bargain.Energy-1), l, 100*l/res.Bargain.Delay)
}
