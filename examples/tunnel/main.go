// Tunnel: adaptive lighting in a road tunnel — the deployment that
// motivates the paper (its reference [2], Ceriotti et al., IPSN 2011).
//
// A tunnel is a long, thin multi-hop network: great depth, low density,
// and a tight control deadline (lights must react to traffic), but the
// nodes are battery powered, so every relay must duty-cycle. The example
// models the tunnel as a deep, sparse ring scenario, plays the game for
// all three protocols over a range of control deadlines, and shows where
// each protocol stops being deployable.
//
//	go run ./examples/tunnel
package main

import (
	"errors"
	"fmt"
	"log"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	// 25 hops of tunnel, sparse (density 2), light sensing traffic (one
	// report per node per 10 min), energy accounted per minute.
	scenario := edmac.Scenario{
		Depth:          25,
		Density:        2,
		SampleInterval: 600,
		Window:         60,
		Payload:        24,
		Radio:          "cc2420",
	}
	budget := 0.05 // J per minute at the first-hop relays

	fmt.Println("Road-tunnel lighting: 25 hops, Ebudget = 0.05 J/min")
	fmt.Printf("%-12s %-28s %-28s %-28s\n", "deadline", "xmac", "dmac", "lmac")
	for _, deadline := range []float64{2, 5, 10, 20, 40} {
		req := edmac.Requirements{EnergyBudget: budget, MaxDelay: deadline}
		fmt.Printf("%-12s", fmt.Sprintf("%g s", deadline))
		for _, p := range edmac.PaperProtocols() {
			res, err := edmac.Optimize(p, scenario, req)
			switch {
			case errors.Is(err, edmac.ErrInfeasible):
				fmt.Printf(" %-27s", "infeasible")
			case err != nil:
				log.Fatalf("%s: %v", p, err)
			default:
				fmt.Printf(" %-27s", fmt.Sprintf("E=%.4g J L=%.3g s", res.Bargain.Energy, res.Bargain.Delay))
			}
		}
		fmt.Println()
	}

	// Pick the best protocol for the 10-second control loop.
	req := edmac.Requirements{EnergyBudget: budget, MaxDelay: 10}
	best, ok := edmac.Best(edmac.Compare(scenario, req))
	if !ok {
		log.Fatal("no protocol satisfies the tunnel requirements")
	}
	specs, err := edmac.Params(best.Protocol, scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRecommendation for a 10 s control loop: %s\n", best.Protocol)
	for i, sp := range specs {
		fmt.Printf("  %s = %.4g %s\n", sp.Name, best.Result.Bargain.Params[i], sp.Unit)
	}
	fmt.Printf("  bottleneck energy %.4g J/min (budget %.3g), control latency %.3g s\n",
		best.Result.Bargain.Energy, budget, best.Result.Bargain.Delay)
}
