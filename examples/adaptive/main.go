// Adaptive: runtime parameter adaptation driven by the game — the
// scenario the paper positions itself against pTunes (its reference
// [12]). When the application's sampling rate drifts (a storm makes the
// sensors chatty, a quiet week calms them down), the old MAC parameters
// sit at the wrong point of the energy-delay frontier. Re-playing the
// game per epoch keeps the deployment at the fair trade-off, and the
// run shows how the bargained wakeup interval tracks the load.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	req := edmac.Requirements{EnergyBudget: 0.03, MaxDelay: 4}
	// A week of operation with drifting traffic: sample intervals in
	// seconds per epoch (shorter = busier network).
	epochs := []struct {
		label    string
		interval float64
	}{
		{"calm baseline", 7200},
		{"routine sampling", 3600},
		{"storm watch", 900},
		{"storm peak", 300},
		{"recovery", 1800},
		{"back to calm", 7200},
	}

	fmt.Println("Adaptive re-optimization of X-MAC under (0.03 J/min, 4 s):")
	fmt.Printf("%-18s %-12s %-14s %-12s %-10s %s\n",
		"epoch", "interval[s]", "Tw*[s]", "E*[J/min]", "L*[s]", "note")

	var frozen []float64 // the storm-peak check below reuses the calm parameters
	for i, ep := range epochs {
		scenario := edmac.DefaultScenario()
		scenario.SampleInterval = ep.interval
		// Relaxed mode: when a storm pushes the load beyond what the
		// budget can cover, deploy the best-effort point and say so
		// instead of dying.
		res, err := edmac.OptimizeRelaxed(edmac.XMAC, scenario, req)
		if err != nil {
			log.Fatalf("%s: %v", ep.label, err)
		}
		note := ""
		if res.BudgetExceeded {
			note = "budget unattainable at this load"
		}
		fmt.Printf("%-18s %-12g %-14.4g %-12.4g %-10.4g %s\n",
			ep.label, ep.interval, res.Bargain.Params[0], res.Bargain.Energy, res.Bargain.Delay, note)
		if i == 0 {
			frozen = res.Bargain.Params
		}
	}

	// What static parameters would have cost: evaluate the calm-epoch
	// configuration under the storm-peak load.
	storm := edmac.DefaultScenario()
	storm.SampleInterval = 300
	staleE, staleL, err := edmac.Evaluate(edmac.XMAC, storm, frozen)
	if err != nil {
		log.Fatal(err)
	}
	adapted, err := edmac.OptimizeRelaxed(edmac.XMAC, storm, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStorm peak with frozen calm-epoch parameters: E=%.4g J/min (budget %.3g!), L=%.3g s\n",
		staleE, req.EnergyBudget, staleL)
	fmt.Printf("Storm peak after re-playing the game:         E=%.4g J/min, L=%.3g s\n",
		adapted.Bargain.Energy, adapted.Bargain.Delay)
	fmt.Printf("Adaptation recovers %.0f%% of the energy overshoot.\n",
		100*(staleE-adapted.Bargain.Energy)/staleE)
}
