// Command scenariofile demonstrates the declarative scenario workflow
// end to end: load a JSON spec from disk, map it onto the analytic ring
// model, bargain a protocol configuration for it, and replay the
// bargain at packet level on the spec's explicit network under its
// traffic model.
//
// Run from the repository root:
//
//	go run ./examples/scenariofile                 # bundled orchard spec
//	go run ./examples/scenariofile my-network.json # your own deployment
package main

import (
	"fmt"
	"log"
	"os"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	path := "examples/scenariofile/orchard.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	sp, err := edmac.LoadScenario(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %s topology, %s traffic\n  %s\n\n",
		sp.Name(), sp.TopologyKind(), sp.TrafficKind(), sp.Description())

	// The analytic bridge: the explicit network collapses to an
	// equivalent ring model the closed-form MAC models understand.
	s, err := sp.Scenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent ring model: depth %d, density %d, one packet per %.0f s per node\n",
		s.Depth, s.Density, s.SampleInterval)

	// Play the energy-delay game on it. The delay bound scales with the
	// network's depth, as a deeper network cannot beat its hop count.
	req := edmac.Requirements{EnergyBudget: 0.06, MaxDelay: 3 + 1.2*float64(s.Depth)}
	res, err := edmac.OptimizeRelaxed(edmac.XMAC, s, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X-MAC bargain: params %v -> %.4g J/window, %.3g s end-to-end\n",
		res.Bargain.Params, res.Bargain.Energy, res.Bargain.Delay)

	// Replay the bargain on the real shape: packets now rise through the
	// actual cluster tiers under the actual bursty workload.
	rep, err := edmac.SimulateScenario(edmac.XMAC, sp, res.Bargain.Params,
		edmac.SimOptions{Duration: 900, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %.0f s (seed %d): %d nodes, %d packets, delivery %.3f\n",
		rep.Duration, rep.Seed, rep.Nodes, rep.Generated, rep.DeliveryRatio)
	fmt.Printf("measured: mean delay %.3g s, outer-ring delay %.3g s, bottleneck energy %.4g J/window\n",
		rep.MeanDelay, rep.OuterRingDelay, rep.BottleneckEnergy)
}
