// Client API tour: one edmac.Client — constructed with functional
// options — serving the whole pipeline as (ctx, Request) → (Report,
// error): the bargaining game, a cached repeat of it, a packet-level
// replay, and a streamed scenario×protocol suite.
//
//	go run ./examples/client
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	// One client per process: a bounded result cache in front of the
	// Nelder-Mead solvers, a fixed worker pool, and a base seed folded
	// into every simulation seed (this deployment's runs decorrelate
	// from any other's, while staying reproducible).
	cli, err := edmac.NewClient(
		edmac.WithCache(edmac.DefaultCacheSize),
		edmac.WithWorkers(4),
		edmac.WithBaseSeed(2026),
	)
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	// Every request takes a context; a deadline bounds the whole tour.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Play the game. No Scenario in the request means the client's
	// default deployment.
	req := edmac.OptimizeRequest{
		Protocol:     edmac.XMAC,
		Requirements: edmac.PaperRequirements(),
	}
	rep, err := cli.Optimize(ctx, req)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	fmt.Printf("X-MAC bargain: E=%.4g J/window, L=%.3g s, params=%v\n",
		rep.Result.Bargain.Energy, rep.Result.Bargain.Delay, rep.Result.Bargain.Params)

	// The identical request again: served from the LRU, not the solver.
	if _, err := cli.Optimize(ctx, req); err != nil {
		log.Fatalf("optimize (repeat): %v", err)
	}
	stats := cli.CacheStats()
	fmt.Printf("result cache: %d hit / %d miss\n", stats.Hits, stats.Misses)

	// Replay the bargain at packet level on a lossy builtin scenario.
	simRep, err := cli.Simulate(ctx, edmac.SimulateRequest{
		Protocol:     edmac.XMAC,
		ScenarioName: "ring-lossy",
		Params:       rep.Result.Bargain.Params,
		Options:      edmac.SimOptions{Duration: 300, Seed: 7},
	})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Printf("ring-lossy replay: delivery %.3f, channel losses %d, effective seed %d\n",
		simRep.Sim.DeliveryRatio, simRep.Sim.ChannelLosses, simRep.Sim.Seed)

	// Stream a small suite: cells arrive as they finish, not as one
	// monolithic report minutes later.
	ring, _ := edmac.BuiltinScenario("ring-baseline")
	lossy, _ := edmac.BuiltinScenario("ring-lossy")
	fmt.Println("suite cells as they complete:")
	err = cli.SuiteStream(ctx, edmac.SuiteRequest{
		Scenarios: []edmac.ScenarioSpec{ring, lossy},
		Protocols: edmac.PaperProtocols(),
		Options:   edmac.SuiteOptions{Duration: 120, Seed: 1},
	}, func(cell edmac.SuiteCell) error {
		if cell.Err != "" {
			fmt.Printf("  %-14s %-5s failed: %s\n", cell.Scenario, cell.Protocol, cell.Err)
			return nil
		}
		fmt.Printf("  %-14s %-5s E=%.4g J, delivery %.3f\n",
			cell.Scenario, cell.Protocol, cell.Analytic.Energy, cell.Sim.DeliveryRatio)
		return nil
	})
	if err != nil {
		log.Fatalf("suite stream: %v", err)
	}
}
