// Simvalidate: replay analytically optimized configurations in the
// packet-level simulator and report measured-vs-predicted energy and
// delay — the repo's evidence that the closed-form models stand on
// something.
//
//	go run ./examples/simvalidate
package main

import (
	"fmt"
	"log"
	"strings"

	edmac "github.com/edmac-project/edmac"
)

// paramString renders a parameter vector compactly, e.g. "1, 0.005".
func paramString(params []float64) string {
	parts := make([]string, len(params))
	for i, v := range params {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, ", ")
}

func main() {
	// A small, busy scenario so half an hour of simulated time carries
	// statistics: depth 3, density 4, one sample per node per 2 minutes.
	scenario := edmac.Scenario{
		Depth:          3,
		Density:        4,
		SampleInterval: 120,
		Window:         60,
		Payload:        32,
		Radio:          "cc2420",
	}

	configs := []struct {
		protocol edmac.Protocol
		params   []float64
		interval float64 // per-protocol stable sampling regime
	}{
		{edmac.XMAC, []float64{0.25}, 120},
		{edmac.DMAC, []float64{1.0, 0.005}, 600},
		{edmac.LMAC, []float64{13, 0.02}, 120},
	}

	fmt.Println("Packet-level validation of the analytic models (1800 s runs):")
	fmt.Printf("%-6s %-22s %-24s %-24s %s\n",
		"proto", "params", "energy J/win (sim/model)", "delay s (sim/model)", "delivery")
	for _, cfg := range configs {
		sc := scenario
		sc.SampleInterval = cfg.interval
		rep, err := edmac.Validate(cfg.protocol, sc, cfg.params,
			edmac.SimOptions{Duration: 1800, Seed: 7})
		if err != nil {
			log.Fatalf("%s: %v", cfg.protocol, err)
		}
		fmt.Printf("%-6s %-22s %-24s %-24s %.3f\n",
			cfg.protocol, paramString(cfg.params),
			fmt.Sprintf("%.4g / %.4g (x%.2f)", rep.BottleneckEnergy, rep.AnalyticEnergy, rep.EnergyRatio),
			fmt.Sprintf("%.4g / %.4g (x%.2f)", rep.OuterRingDelay, rep.AnalyticDelay, rep.DelayRatio),
			rep.DeliveryRatio)
	}
	fmt.Println("\nRatios near 1.00 mean the closed-form model matches the measured system;")
	fmt.Println("the models are collision-free and ring-averaged, so a ±2.5x band is the target.")
}
