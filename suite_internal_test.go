package edmac

import (
	"context"
	"hash/fnv"
	"testing"
)

// TestSuiteCellSeedPinned freezes the seed derivation: committed suite
// goldens embed these values, so any change to the encoding shows up
// here before it silently rewrites every golden cell.
func TestSuiteCellSeedPinned(t *testing.T) {
	for _, tc := range []struct {
		scenario string
		protocol Protocol
		want     int64
	}{
		{"ring-baseline", XMAC, -4613168393296268275},
		{"meadow-stormcycle", LMAC, 650889711679141048},
	} {
		if got := suiteCellSeed(0, tc.scenario, tc.protocol); got != tc.want {
			t.Errorf("suiteCellSeed(0, %q, %q) = %d, want %d", tc.scenario, tc.protocol, got, tc.want)
		}
		// The base seed XORs in, so distinct bases decorrelate.
		if got := suiteCellSeed(12345, tc.scenario, tc.protocol); got == tc.want {
			t.Errorf("base seed had no effect on %q/%q", tc.scenario, tc.protocol)
		}
	}
}

// TestSuiteCellSeedCompatible asserts the escaped encoding matches the
// historical unescaped name+"/"+protocol hash whenever the name is free
// of '/' and '\' — the property that kept existing goldens stable when
// the encoding became unambiguous.
func TestSuiteCellSeedCompatible(t *testing.T) {
	for _, name := range []string{"ring-baseline", "grid-eventwatch", "a-b_c.9"} {
		for _, p := range Protocols() {
			h := fnv.New64a()
			h.Write([]byte(name))
			h.Write([]byte{'/'})
			h.Write([]byte(p))
			want := int64(7) ^ int64(h.Sum64())
			if got := suiteCellSeed(7, name, p); got != want {
				t.Errorf("suiteCellSeed(7, %q, %q) = %d diverged from the historical form %d",
					name, p, got, want)
			}
		}
	}
}

// TestSuiteCellSeedUnambiguous asserts distinct (scenario, protocol)
// identities can no longer collide: the raw concatenation made
// ("a/b", "c") and ("a", "b/c") hash alike.
func TestSuiteCellSeedUnambiguous(t *testing.T) {
	pairs := [][2]struct {
		name string
		p    Protocol
	}{
		{{"a/b", "c"}, {"a", "b/c"}},
		{{"x/", "y"}, {"x", "/y"}},
		{{`a\`, "/b"}, {`a\/`, "b"}},
		{{`a\/b`, "c"}, {`a\`, "b/c"}},
	}
	for _, pair := range pairs {
		a := suiteCellSeed(0, pair[0].name, pair[0].p)
		b := suiteCellSeed(0, pair[1].name, pair[1].p)
		if a == b {
			t.Errorf("identities (%q,%q) and (%q,%q) collide on %d",
				pair[0].name, pair[0].p, pair[1].name, pair[1].p, a)
		}
	}
}

// TestEffectiveParams pins the raising rule runSuiteCell reports from.
func TestEffectiveParams(t *testing.T) {
	bargain := []float64{9, 0.08}
	raisedParams, raised := effectiveParams(LMAC, bargain, 13)
	if !raised || raisedParams[0] != 13 || raisedParams[1] != 0.08 {
		t.Errorf("effectiveParams(lmac, %v, 13) = %v, %v", bargain, raisedParams, raised)
	}
	if bargain[0] != 9 {
		t.Error("effectiveParams mutated the bargain vector")
	}
	kept, raised := effectiveParams(LMAC, bargain, 9)
	if raised || kept[0] != 9 {
		t.Errorf("minSlots at the bargain raised anyway: %v, %v", kept, raised)
	}
	other, raised := effectiveParams(XMAC, []float64{0.2}, 13)
	if raised || other[0] != 0.2 {
		t.Errorf("non-LMAC protocol raised: %v, %v", other, raised)
	}
}

// TestRunSuiteCellReportsEffectiveParams is the regression test for the
// suite-report bug: when LMAC slots are raised to the network's minimum
// conflict-free schedule, the reported Params must be the vector the
// simulator ran, not the unraised bargain.
func TestRunSuiteCellReportsEffectiveParams(t *testing.T) {
	sp, ok := BuiltinScenario("ring-baseline")
	if !ok {
		t.Fatal("ring-baseline missing")
	}
	mat, err := sp.spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	o := SuiteOptions{Duration: 40, Seed: 1}.withDefaults()
	analytic := analyticScenarioOf(mat)

	// Baseline: the natural minimum never raises this scenario.
	plain := runSuiteCell(context.Background(), sp.spec, mat, analytic, mat.Network.MinSlots(), LMAC, o)
	if plain.Err != "" {
		t.Fatalf("baseline cell failed: %s", plain.Err)
	}
	if plain.SlotsRaised {
		t.Fatal("baseline cell unexpectedly raised; pick a higher forced minimum below")
	}
	bargained := plain.Params[0]

	// Force a minimum above the bargain, as an irregular topology would.
	minSlots := int(bargained) + 4
	cell := runSuiteCell(context.Background(), sp.spec, mat, analytic, minSlots, LMAC, o)
	if cell.Err != "" {
		t.Fatalf("raised cell failed: %s", cell.Err)
	}
	if !cell.SlotsRaised {
		t.Fatalf("forced minimum %d did not raise the bargained %v slots", minSlots, bargained)
	}
	if cell.Params[0] != float64(minSlots) {
		t.Errorf("reported %v slots; the simulator ran %d — the report must carry the effective vector",
			cell.Params[0], minSlots)
	}
	if cell.Analytic == nil || cell.Sim == nil {
		t.Fatal("raised cell missing analytic or sim side")
	}
	// The raised run really differs from the unraised one.
	if cell.Sim.BottleneckEnergy == plain.Sim.BottleneckEnergy && cell.Sim.Delivered == plain.Sim.Delivered {
		t.Error("raised cell simulated identically to the unraised one")
	}
}
