package edmac_test

import (
	"reflect"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

// TestLossyScenarioShiftsBargain asserts the tentpole end to end: the
// lossy builtin twins (same topology, traffic and radio as their
// perfect counterparts, lossy links added) must surface a sub-1 link
// PRR through the analytic bridge and move the Nash bargain — the game
// visibly reacts to link quality.
func TestLossyScenarioShiftsBargain(t *testing.T) {
	pairs := [][2]string{
		{"ring-baseline", "ring-lossy"},
		{"disk-meadow", "meadow-shadowed"},
	}
	req := edmac.PaperRequirements()
	for _, pair := range pairs {
		perfectSpec, ok := edmac.BuiltinScenario(pair[0])
		if !ok {
			t.Fatalf("missing builtin %s", pair[0])
		}
		lossySpec, ok := edmac.BuiltinScenario(pair[1])
		if !ok {
			t.Fatalf("missing builtin %s", pair[1])
		}
		perfect, err := perfectSpec.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		lossy, err := lossySpec.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		if perfect.LinkPRR != 0 {
			t.Errorf("%s: perfect scenario carries LinkPRR %v, want 0 (unset)", pair[0], perfect.LinkPRR)
		}
		if lossy.LinkPRR <= 0 || lossy.LinkPRR >= 1 {
			t.Fatalf("%s: LinkPRR = %v, want inside (0, 1)", pair[1], lossy.LinkPRR)
		}
		a, err := edmac.OptimizeRelaxed(edmac.XMAC, perfect, req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := edmac.OptimizeRelaxed(edmac.XMAC, lossy, req)
		if err != nil {
			t.Fatal(err)
		}
		if a.Bargain.Params[0] == b.Bargain.Params[0] {
			t.Errorf("%s vs %s: identical xmac bargain %v — the game ignored link quality",
				pair[0], pair[1], a.Bargain.Params)
		}
	}
}

// TestSimulateLossyScenario runs a lossy builtin at packet level and
// asserts the channel machinery surfaces in the public report with
// sound accounting.
func TestSimulateLossyScenario(t *testing.T) {
	sp, ok := edmac.BuiltinScenario("ring-lossy")
	if !ok {
		t.Fatal("missing builtin ring-lossy")
	}
	if got := sp.ChannelKind(); got != "bernoulli" {
		t.Fatalf("ChannelKind = %q, want bernoulli", got)
	}
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := edmac.OptimizeRelaxed(edmac.XMAC, sc, edmac.PaperRequirements())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := edmac.SimulateScenario(edmac.XMAC, sp, res.Bargain.Params,
		edmac.SimOptions{Duration: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated == 0 {
		t.Fatal("nothing generated")
	}
	if rep.ChannelLosses == 0 {
		t.Error("lossy scenario recorded no channel losses")
	}
	if rep.Captures == 0 {
		t.Error("capture-enabled scenario recorded no captures")
	}
	if rep.DeliveryRatio > 1 {
		t.Errorf("DeliveryRatio = %v, want <= 1", rep.DeliveryRatio)
	}
	if rep.Delivered+0 > rep.Generated {
		t.Errorf("delivered %d > generated %d", rep.Delivered, rep.Generated)
	}
	// Byte-stable replay: the report is a pure function of its inputs.
	again, err := edmac.SimulateScenario(edmac.XMAC, sp, res.Bargain.Params,
		edmac.SimOptions{Duration: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("lossy SimulateScenario not reproducible")
	}
}
