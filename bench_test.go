// Benchmark harness: one benchmark per figure of the paper's evaluation
// plus the ablations called out in DESIGN.md §4. Each benchmark prints
// the regenerated series once (the rows the paper plots) and then times
// the computation; run with
//
//	go test -bench=. -benchmem
//
// and compare the printed tables against EXPERIMENTS.md.
package edmac_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	edmac "github.com/edmac-project/edmac"
	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/nbs"
	"github.com/edmac-project/edmac/internal/topology"
)

// printOnce guards the one-time series dumps across benchmark reruns.
var printOnce sync.Map

func once(key string, dump func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		dump()
	}
}

// --- Figures 1 and 2: the paper's entire evaluation ------------------

func benchFigure(b *testing.B, protocol edmac.Protocol, fig1 bool) {
	b.Helper()
	s := edmac.DefaultScenario()
	sweep := func() []edmac.Result {
		var out []edmac.Result
		values := []float64{1, 2, 3, 4, 5, 6}
		if !fig1 {
			values = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
		}
		for _, v := range values {
			req := edmac.Requirements{EnergyBudget: 0.06, MaxDelay: v}
			if !fig1 {
				req = edmac.Requirements{EnergyBudget: v, MaxDelay: 6}
			}
			res, err := edmac.OptimizeRelaxed(protocol, s, req)
			if err != nil {
				b.Fatalf("%v: %v", req, err)
			}
			out = append(out, res)
		}
		return out
	}
	results := sweep()
	name := fmt.Sprintf("fig1-%s", protocol)
	header := "Lmax[s]"
	if !fig1 {
		name = fmt.Sprintf("fig2-%s", protocol)
		header = "Ebudget[J]"
	}
	once(name, func() {
		fmt.Printf("\n# %s — trade-off points (E* [J], L* [s])\n", name)
		fmt.Printf("%-12s %-12s %-10s %s\n", header, "E*", "L*", "flags")
		for _, r := range results {
			v := r.Requirements.MaxDelay
			if !fig1 {
				v = r.Requirements.EnergyBudget
			}
			flags := "-"
			if r.BudgetExceeded {
				flags = "over-budget"
			}
			fmt.Printf("%-12g %-12.5g %-10.4g %s\n", v, r.Bargain.Energy, r.Bargain.Delay, flags)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep()
	}
}

func BenchmarkFigure1XMAC(b *testing.B) { benchFigure(b, edmac.XMAC, true) }
func BenchmarkFigure1DMAC(b *testing.B) { benchFigure(b, edmac.DMAC, true) }
func BenchmarkFigure1LMAC(b *testing.B) { benchFigure(b, edmac.LMAC, true) }
func BenchmarkFigure2XMAC(b *testing.B) { benchFigure(b, edmac.XMAC, false) }
func BenchmarkFigure2DMAC(b *testing.B) { benchFigure(b, edmac.DMAC, false) }
func BenchmarkFigure2LMAC(b *testing.B) { benchFigure(b, edmac.LMAC, false) }

// --- Frontier curves (the continuous lines in the figures) -----------

func benchFrontier(b *testing.B, protocol edmac.Protocol) {
	b.Helper()
	s := edmac.DefaultScenario()
	req := edmac.Requirements{EnergyBudget: 10, MaxDelay: 6}
	pts, err := edmac.Frontier(protocol, s, req, 25)
	if err != nil {
		b.Fatal(err)
	}
	once("frontier-"+string(protocol), func() {
		fmt.Printf("\n# frontier-%s — Pareto curve (E [J], L [s])\n", protocol)
		for _, p := range pts {
			fmt.Printf("%.5g,%.5g\n", p.Energy, p.Delay)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edmac.Frontier(protocol, s, req, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontierXMAC(b *testing.B) { benchFrontier(b, edmac.XMAC) }
func BenchmarkFrontierDMAC(b *testing.B) { benchFrontier(b, edmac.DMAC) }
func BenchmarkFrontierLMAC(b *testing.B) { benchFrontier(b, edmac.LMAC) }

// --- Proportional fairness (the paper's closing identity) ------------

func BenchmarkProportionalFairness(b *testing.B) {
	s := edmac.DefaultScenario()
	compute := func() [][3]float64 {
		var rows [][3]float64
		for _, lmax := range []float64{1, 2, 3, 4, 5, 6} {
			res, err := edmac.OptimizeRelaxed(edmac.XMAC, s,
				edmac.Requirements{EnergyBudget: 0.06, MaxDelay: lmax})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, [3]float64{lmax, res.FairnessEnergy, res.FairnessDelay})
		}
		return rows
	}
	rows := compute()
	once("propfair", func() {
		fmt.Printf("\n# propfair — proportional-fairness coordinates at the X-MAC bargain\n")
		fmt.Printf("%-10s %-12s %-12s\n", "Lmax[s]", "f_energy", "f_delay")
		for _, r := range rows {
			fmt.Printf("%-10g %-12.4f %-12.4f\n", r[0], r[1], r[2])
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compute()
	}
}

// --- Sweep execution: sequential vs worker-pool ------------------------
//
// The same paper grid (Figure 1, X-MAC) solved cell by cell on one
// goroutine and fanned over the worker pool. On an N-core host the
// parallel sweep approaches N× until cells outnumber cores; on one core
// it degenerates to the sequential path (the pool runs inline).

func BenchmarkSweepMaxDelaySequential(b *testing.B) {
	env := macmodel.Default()
	m, err := macmodel.NewXMAC(env)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pts := core.SweepMaxDelay(m, core.PaperEnergyBudget, core.PaperDelays())
		if len(pts) != len(core.PaperDelays()) {
			b.Fatal("short sweep")
		}
	}
}

func BenchmarkSweepMaxDelayParallel(b *testing.B) {
	env := macmodel.Default()
	m, err := macmodel.NewXMAC(env)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		pts, err := core.SweepMaxDelayParallel(ctx, m, core.PaperEnergyBudget, core.PaperDelays(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(core.PaperDelays()) {
			b.Fatal("short sweep")
		}
	}
}

// --- Batch simulation: sequential vs worker-pool -----------------------

func benchBatchRuns() []edmac.BatchRun {
	runs := make([]edmac.BatchRun, 8)
	for i := range runs {
		runs[i] = edmac.BatchRun{
			Protocol: edmac.XMAC,
			Params:   []float64{0.5},
			Options:  edmac.SimOptions{Duration: 120, Seed: int64(i + 1)},
		}
	}
	return runs
}

func BenchmarkSimulateBatchSequential(b *testing.B) {
	s := edmac.Scenario{
		Depth: 3, Density: 4, SampleInterval: 120, Window: 60, Payload: 32, Radio: "cc2420",
	}
	runs := benchBatchRuns()
	for i := 0; i < b.N; i++ {
		for _, r := range runs {
			if _, err := edmac.Simulate(r.Protocol, s, r.Params, r.Options); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSimulateBatchParallel(b *testing.B) {
	s := edmac.Scenario{
		Depth: 3, Density: 4, SampleInterval: 120, Window: 60, Payload: 32, Radio: "cc2420",
	}
	runs := benchBatchRuns()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, out := range edmac.SimulateBatch(ctx, s, runs, 0) {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
}

// --- Scalability: cost independent of node count ----------------------

func BenchmarkScalability(b *testing.B) {
	for _, depth := range []int{5, 10, 20, 40} {
		s := edmac.DefaultScenario()
		s.Depth = depth
		nodes := (s.Density + 1) * depth * depth
		b.Run(fmt.Sprintf("depth=%d/nodes=%d", depth, nodes), func(b *testing.B) {
			req := edmac.Requirements{EnergyBudget: 0.5, MaxDelay: 30}
			for i := 0; i < b.N; i++ {
				if _, err := edmac.Optimize(edmac.XMAC, s, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: Nash vs alternative bargaining solutions ---------------

func BenchmarkBargainingAblation(b *testing.B) {
	env := macmodel.Default()
	m, err := macmodel.NewXMAC(env)
	if err != nil {
		b.Fatal(err)
	}
	req := core.Requirements{EnergyBudget: core.PaperEnergyBudget, MaxDelay: core.PaperMaxDelay}
	g := core.GameFor(m, req)
	out, err := nbs.Solve(g)
	if err != nil {
		b.Fatal(err)
	}
	solveAll := func() map[string]nbs.Point {
		points := map[string]nbs.Point{"nash": out.Bargain}
		ks, err := nbs.KalaiSmorodinsky(g, out.DisagreementA, out.DisagreementB, out.BestA.A, out.BestB.B)
		if err != nil {
			b.Fatal(err)
		}
		points["kalai-smorodinsky"] = ks
		eg, err := nbs.Egalitarian(g, out.DisagreementA, out.DisagreementB)
		if err != nil {
			b.Fatal(err)
		}
		points["egalitarian"] = eg
		ws, err := nbs.WeightedSum(g, out.DisagreementA, out.DisagreementB, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		points["weighted-sum-0.5"] = ws
		return points
	}
	points := solveAll()
	once("ablation-bargain", func() {
		fmt.Printf("\n# ablation-bargain — compromise concepts on the X-MAC game (0.06 J, 6 s)\n")
		fmt.Printf("%-20s %-12s %-10s %s\n", "solution", "E [J]", "L [s]", "nash product")
		for _, name := range []string{"nash", "kalai-smorodinsky", "egalitarian", "weighted-sum-0.5"} {
			p := points[name]
			prod := (out.DisagreementA - p.A) * (out.DisagreementB - p.B)
			fmt.Printf("%-20s %-12.5g %-10.4g %.4g\n", name, p.A, p.B, prod)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveAll()
	}
}

// --- Ablation: choice of the disagreement (threat) point --------------

func BenchmarkThreatPointAblation(b *testing.B) {
	env := macmodel.Default()
	m, err := macmodel.NewXMAC(env)
	if err != nil {
		b.Fatal(err)
	}
	req := core.Requirements{EnergyBudget: core.PaperEnergyBudget, MaxDelay: core.PaperMaxDelay}
	g := core.GameFor(m, req)
	out, err := nbs.Solve(g)
	if err != nil {
		b.Fatal(err)
	}
	solveBoth := func() (nbs.Point, nbs.Point) {
		// The paper's threat point (Eworst, Lworst) vs the naive
		// alternative (Ebudget, Lmax).
		paper := out.Bargain
		naive, _, err := nbs.Bargain(g, req.EnergyBudget, req.MaxDelay)
		if err != nil {
			b.Fatal(err)
		}
		return paper, naive
	}
	paper, naive := solveBoth()
	once("ablation-threat", func() {
		fmt.Printf("\n# ablation-threat — disagreement-point choice on the X-MAC game\n")
		fmt.Printf("%-22s %-12s %-10s\n", "threat point", "E [J]", "L [s]")
		fmt.Printf("%-22s %-12.5g %-10.4g\n", "(Eworst,Lworst) paper", paper.A, paper.B)
		fmt.Printf("%-22s %-12.5g %-10.4g\n", "(Ebudget,Lmax) naive", naive.A, naive.B)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveBoth()
	}
}

// --- Cross-validation (analytic vs packet-level simulator) ------------

func BenchmarkSimValidation(b *testing.B) {
	s := edmac.Scenario{
		Depth: 3, Density: 4, SampleInterval: 120, Window: 60, Payload: 32, Radio: "cc2420",
	}
	runOnce := func() edmac.ValidationReport {
		rep, err := edmac.Validate(edmac.XMAC, s, []float64{0.25},
			edmac.SimOptions{Duration: 600, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	rep := runOnce()
	once("simval", func() {
		fmt.Printf("\n# simval — X-MAC Tw=0.25 s on a 37-node ring network, 600 s\n")
		fmt.Printf("energy J/window: measured %.5g vs analytic %.5g (x%.2f)\n",
			rep.BottleneckEnergy, rep.AnalyticEnergy, rep.EnergyRatio)
		fmt.Printf("delay  s:        measured %.5g vs analytic %.5g (x%.2f)\n",
			rep.OuterRingDelay, rep.AnalyticDelay, rep.DelayRatio)
		fmt.Printf("delivery %.3f, collisions %d\n", rep.DeliveryRatio, rep.Collisions)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
}

// --- Ablation: framework generality (B-MAC, SCP-MAC vs X-MAC) ---------

func BenchmarkProtocolExtensions(b *testing.B) {
	s := edmac.DefaultScenario()
	req := edmac.Requirements{EnergyBudget: 0.06, MaxDelay: 6}
	protos := []edmac.Protocol{edmac.XMAC, edmac.BMAC, edmac.SCPMAC}
	solve := func() []edmac.Result {
		out := make([]edmac.Result, 0, len(protos))
		for _, p := range protos {
			r, err := edmac.Optimize(p, s, req)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}
	results := solve()
	once("ablation-extensions", func() {
		fmt.Printf("\n# ablation-extensions — preamble-sampling family at the bargain\n")
		for i, p := range protos {
			fmt.Printf("%-7s E*=%-10.5g L*=%-8.4g\n", p, results[i].Bargain.Energy, results[i].Bargain.Delay)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solve()
	}
}

// --- Scalability of the simulator itself -------------------------------

// reportEventRate turns the runs' accumulated event count into the
// scheduler-throughput metric the bench ledger tracks alongside ns/op.
func reportEventRate(b *testing.B, events uint64) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

func BenchmarkSimulatorEventRate(b *testing.B) {
	net, err := topology.Rings(topology.RingModel{Depth: 3, Density: 4})
	if err != nil {
		b.Fatal(err)
	}
	_ = net
	s := edmac.Scenario{
		Depth: 3, Density: 4, SampleInterval: 120, Window: 60, Payload: 32, Radio: "cc2420",
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := edmac.Simulate(edmac.XMAC, s, []float64{0.5},
			edmac.SimOptions{Duration: 300, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	reportEventRate(b, events)
}

// The same simulator over a lossy, capture-enabled medium (the
// ring-lossy builtin: bernoulli links at PRR 0.85). Gated alongside the
// perfect-channel benchmark above, so the per-receiver delivery draws
// can never sneak allocations or a slowdown into the hot path — the
// perfect path must stay draw-free and byte-identical.
func BenchmarkSimulatorEventRateLossy(b *testing.B) {
	sp, ok := edmac.BuiltinScenario("ring-lossy")
	if !ok {
		b.Fatal("missing builtin ring-lossy")
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := edmac.SimulateScenario(edmac.XMAC, sp, []float64{0.5},
			edmac.SimOptions{Duration: 300, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	reportEventRate(b, events)
}

// The fault-injection hot path: churn plus finite batteries (the
// ring-attrition builtin) runs the epoch-swap machinery — crashes,
// recoveries, battery-death timers, re-install of the MAC layer — on
// top of the same event loop. Gated alongside the perfect and lossy
// paths so fault bookkeeping can never quietly tax the scheduler.
func BenchmarkSimulatorEventRateFaulty(b *testing.B) {
	sp, ok := edmac.BuiltinScenario("ring-attrition")
	if !ok {
		b.Fatal("missing builtin ring-attrition")
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := edmac.SimulateScenario(edmac.XMAC, sp, []float64{0.5},
			edmac.SimOptions{Duration: 300, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	reportEventRate(b, events)
}
