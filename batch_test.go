package edmac_test

import (
	"context"
	"reflect"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

// batchScenario is small enough that a table of runs finishes quickly.
func batchScenario() edmac.Scenario {
	return edmac.Scenario{
		Depth: 3, Density: 4, SampleInterval: 120, Window: 60, Payload: 32, Radio: "cc2420",
	}
}

// simParams maps each simulable protocol to a runnable parameter vector.
var simParams = map[edmac.Protocol][]float64{
	edmac.XMAC: {0.25},
	edmac.BMAC: {0.25},
	edmac.DMAC: {2.0, 0.05},
	edmac.LMAC: {15, 0.05},
}

// SimulateBatch must reproduce sequential Simulate calls byte for byte,
// across every simulable protocol and several seeds.
func TestSimulateBatchMatchesSequential(t *testing.T) {
	s := batchScenario()
	var runs []edmac.BatchRun
	for _, p := range []edmac.Protocol{edmac.XMAC, edmac.BMAC, edmac.DMAC, edmac.LMAC} {
		for seed := int64(1); seed <= 2; seed++ {
			runs = append(runs, edmac.BatchRun{
				Protocol: p,
				Params:   simParams[p],
				Options:  edmac.SimOptions{Duration: 300, Seed: seed},
			})
		}
	}
	outcomes := edmac.SimulateBatch(context.Background(), s, runs, 4)
	if len(outcomes) != len(runs) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(runs))
	}
	for i, out := range outcomes {
		if out.Err != nil {
			t.Fatalf("run %d (%s): %v", i, runs[i].Protocol, out.Err)
		}
		want, err := edmac.Simulate(runs[i].Protocol, s, runs[i].Params, runs[i].Options)
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, out.Report) {
			t.Errorf("run %d (%s seed %d): batch report differs from sequential\nwant %+v\ngot  %+v",
				i, runs[i].Protocol, runs[i].Options.Seed, want, out.Report)
		}
	}
}

func TestSimulateSeeds(t *testing.T) {
	s := batchScenario()
	seeds := []int64{3, 5, 8}
	outcomes := edmac.SimulateSeeds(context.Background(), edmac.XMAC, s, []float64{0.25},
		edmac.SimOptions{Duration: 300}, seeds, 2)
	if len(outcomes) != len(seeds) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(seeds))
	}
	for i, out := range outcomes {
		if out.Err != nil {
			t.Fatalf("seed %d: %v", seeds[i], out.Err)
		}
		if out.Run.Options.Seed != seeds[i] {
			t.Errorf("outcome %d ran seed %d, want %d", i, out.Run.Options.Seed, seeds[i])
		}
	}
	// Distinct seeds must explore distinct sample phases.
	if reflect.DeepEqual(outcomes[0].Report, outcomes[1].Report) {
		t.Error("different seeds produced identical reports")
	}
}

func TestSimulateBatchRejectsSCPMAC(t *testing.T) {
	s := batchScenario()
	outcomes := edmac.SimulateBatch(context.Background(), s, []edmac.BatchRun{
		{Protocol: edmac.SCPMAC, Params: []float64{1, 0.01}, Options: edmac.SimOptions{Duration: 60}},
		{Protocol: edmac.XMAC, Params: []float64{0.25}, Options: edmac.SimOptions{Duration: 60}},
	}, 2)
	if outcomes[0].Err == nil {
		t.Error("scpmac batch entry did not error")
	}
	if outcomes[1].Err != nil {
		t.Errorf("valid entry failed: %v", outcomes[1].Err)
	}
}

// The public sweeps must agree cell-for-cell with OptimizeRelaxed.
func TestSweepsMatchOptimizeRelaxed(t *testing.T) {
	s := edmac.DefaultScenario()
	for _, p := range edmac.PaperProtocols() {
		pts, err := edmac.SweepMaxDelay(context.Background(), p, s, 0.06, edmac.PaperDelays())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(pts) != len(edmac.PaperDelays()) {
			t.Fatalf("%s: %d cells, want %d", p, len(pts), len(edmac.PaperDelays()))
		}
		for i, pt := range pts {
			want, wantErr := edmac.OptimizeRelaxed(p, s,
				edmac.Requirements{EnergyBudget: 0.06, MaxDelay: edmac.PaperDelays()[i]})
			if (wantErr == nil) != (pt.Err == nil) {
				t.Errorf("%s cell %d: err %v vs sequential %v", p, i, pt.Err, wantErr)
				continue
			}
			if wantErr == nil && !reflect.DeepEqual(want, pt.Result) {
				t.Errorf("%s cell %d: sweep result differs from OptimizeRelaxed", p, i)
			}
		}
	}
	// Figure 2 direction, one protocol suffices for the wiring.
	pts, err := edmac.SweepEnergyBudget(context.Background(), edmac.XMAC, s, 6, edmac.PaperBudgets())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		want, _ := edmac.OptimizeRelaxed(edmac.XMAC, s,
			edmac.Requirements{EnergyBudget: edmac.PaperBudgets()[i], MaxDelay: 6})
		if pt.Err == nil && !reflect.DeepEqual(want, pt.Result) {
			t.Errorf("budget cell %d differs from OptimizeRelaxed", i)
		}
	}
}
