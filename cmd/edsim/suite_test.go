package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestSuiteGolden regenerates the full builtin suite and asserts it is
// byte-identical to the committed golden report — the engine-level
// determinism contract (run under -race in CI).
func TestSuiteGolden(t *testing.T) {
	if err := run(context.Background(), []string{"suite", "-check", filepath.Join("testdata", "suite_golden.json")}); err != nil {
		t.Fatalf("suite drifted from golden: %v", err)
	}
}

// TestSuiteSelections exercises the subset and error paths of the suite
// flags.
func TestSuiteSelections(t *testing.T) {
	out := filepath.Join(t.TempDir(), "suite.json")
	err := run(context.Background(), []string{"suite",
		"-scenarios", "ring-baseline",
		"-protocols", "xmac,scpmac",
		"-duration", "120",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("subset suite: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("report not newline-terminated")
	}

	for _, args := range [][]string{
		{"suite", "-scenarios", "no-such-scenario"},
		{"suite", "-protocols", "tdma9000"},
		{"suite", "-spec", filepath.Join(t.TempDir(), "missing.json")},
		{"suite", "-check", filepath.Join(t.TempDir(), "missing-golden.json"), "-scenarios", "ring-baseline", "-protocols", "scpmac"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestSuiteAdaptiveFlag asserts -adaptive forces per-phase
// re-bargaining on a phased scenario even when the suite would
// otherwise honour the spec's own adaptation block.
func TestSuiteAdaptiveFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "suite.json")
	err := run(context.Background(), []string{"suite",
		"-scenarios", "meadow-stormcycle",
		"-protocols", "xmac",
		"-duration", "120",
		"-adaptive",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("adaptive suite: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"adaptive": true`, `"phases"`, `"static_sim"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("adaptive report missing %s", want)
		}
	}
}

// TestSuiteList asserts -list works without running anything.
func TestSuiteList(t *testing.T) {
	if err := run(context.Background(), []string{"suite", "-list"}); err != nil {
		t.Fatalf("suite -list: %v", err)
	}
}

// TestSuiteSpecFile asserts an on-disk spec joins the matrix.
func TestSuiteSpecFile(t *testing.T) {
	spec := `{
  "version": 1,
  "name": "test-line",
  "seed": 1,
  "topology": {"kind": "line", "nodes": 5, "spacing": 0.8},
  "traffic": {"kind": "periodic", "rate": 0.02},
  "radio": "cc2420",
  "payload": 32,
  "window": 60
}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "suite.json")
	if err := run(context.Background(), []string{"suite", "-spec", path, "-protocols", "xmac", "-duration", "120", "-out", out}); err != nil {
		t.Fatalf("suite -spec: %v", err)
	}
}
