package main

import (
	"context"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{name: "no args", args: nil, wantErr: true},
		{name: "unknown", args: []string{"bogus"}, wantErr: true},
		{name: "help", args: []string{"help"}},
		{name: "missing params", args: []string{"run", "-protocol", "xmac"}, wantErr: true},
		{name: "bad params", args: []string{"run", "-protocol", "xmac", "-params", "abc"}, wantErr: true},
		{name: "wrong arity", args: []string{"run", "-protocol", "dmac", "-params", "1"}, wantErr: true},
		{name: "scpmac rejected", args: []string{"run", "-protocol", "scpmac", "-params", "1"}, wantErr: true},
		{
			name: "short xmac run",
			args: []string{"run", "-protocol", "xmac", "-params", "0.5", "-duration", "120", "-depth", "2", "-density", "2"},
		},
		{
			name: "short lmac validation",
			args: []string{"validate", "-protocol", "lmac", "-params", "9,0.02", "-duration", "240", "-depth", "2", "-density", "2"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(context.Background(), tt.args)
			if (err != nil) != tt.wantErr {
				t.Errorf("run(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			}
		})
	}
}

func TestParseParams(t *testing.T) {
	got, err := parseParams(" 1, 0.005 ")
	if err != nil {
		t.Fatalf("parseParams: %v", err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 0.005 {
		t.Errorf("parseParams = %v", got)
	}
	if _, err := parseParams(""); err == nil {
		t.Error("empty params accepted")
	}
	if _, err := parseParams("1,,2"); err == nil {
		t.Error("blank entry accepted")
	}
}
