// Command edsim replays MAC protocol configurations in the packet-level
// discrete-event simulator and cross-validates the analytic models.
//
// Usage:
//
//	edsim run      -protocol xmac -params 0.25 -duration 1800 -seed 1
//	edsim validate -protocol lmac -params 15,0.05 -duration 1800
//	edsim validate -protocol xmac -params 0.25 -reps 8
//	edsim suite    -list
//	edsim suite    -out suite.json
//	edsim suite    -check testdata/suite_golden.json
//
// -reps N replicates the run under N consecutive seeds, fanned across
// every CPU, and reports each replication plus the aggregate — the
// Monte-Carlo cross-validation of the analytic models. Scenario flags
// (-depth, -density, -interval, -window, -payload, -radio) are accepted
// by run and validate.
//
// The suite subcommand plays the declarative scenario matrix (builtin
// registry × all protocols) in parallel and emits one machine-readable
// JSON report; -check diffs it byte-for-byte against a committed golden
// file, the determinism gate CI runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (run, validate)")
	}
	// One client serves every subcommand; the signal-aware ctx lets an
	// interrupt abort simulations (and whole suites) mid-event-loop.
	cli, err := edmac.NewClient()
	if err != nil {
		return err
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(ctx, cli, rest, false)
	case "validate":
		return cmdRun(ctx, cli, rest, true)
	case "suite":
		return cmdSuite(ctx, cli, rest)
	case "help", "-h", "--help":
		fmt.Println("subcommands: run, validate, suite")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func cmdRun(ctx context.Context, cli *edmac.Client, args []string, validate bool) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol (xmac, dmac, lmac)")
	paramsArg := fs.String("params", "", "comma-separated protocol parameters (required)")
	duration := fs.Float64("duration", 1800, "simulated seconds")
	seed := fs.Int64("seed", 1, "random seed (first seed with -reps)")
	reps := fs.Int("reps", 1, "Monte-Carlo replications under consecutive seeds, run in parallel")
	def := edmac.DefaultScenario()
	depth := fs.Int("depth", def.Depth, "network depth D in hops")
	density := fs.Int("density", def.Density, "unit-disk neighbourhood density C")
	interval := fs.Float64("interval", 120, "seconds between samples per node")
	window := fs.Float64("window", def.Window, "energy accounting window in seconds")
	payload := fs.Int("payload", def.Payload, "application payload bytes")
	radioName := fs.String("radio", def.Radio, "radio profile (cc2420, cc1101)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	params, err := parseParams(*paramsArg)
	if err != nil {
		return err
	}
	scenario := edmac.Scenario{
		Depth:          *depth,
		Density:        *density,
		SampleInterval: *interval,
		Window:         *window,
		Payload:        *payload,
		Radio:          *radioName,
	}
	opts := edmac.SimOptions{Duration: *duration, Seed: *seed}

	if *reps > 1 {
		return runReplicated(ctx, cli, edmac.Protocol(*protocol), scenario, params, opts, *reps, validate)
	}

	rep, err := cli.Simulate(ctx, edmac.SimulateRequest{
		Protocol: edmac.Protocol(*protocol),
		Scenario: &scenario,
		Params:   params,
		Options:  opts,
		Validate: validate,
	})
	if err != nil {
		return err
	}
	printSimReport(rep.Sim)
	if validate {
		fmt.Printf("\n%-26s %-14s %-14s %s\n", "metric", "analytic", "measured", "ratio")
		fmt.Printf("%-26s %-14.5g %-14.5g %.2f\n", "bottleneck energy [J/win]",
			rep.Analytic.Energy, rep.Sim.BottleneckEnergy, ratioOrNaN(rep.Analytic.EnergyRatio))
		fmt.Printf("%-26s %-14.5g %-14.5g %.2f\n", "outer-ring delay [s]",
			rep.Analytic.Delay, rep.Sim.OuterRingDelay, ratioOrNaN(rep.Analytic.DelayRatio))
	}
	return nil
}

// ratioOrNaN unboxes an optional ratio, NaN when the measurement was
// unusable — the value the validate table always printed.
func ratioOrNaN(r *float64) float64 {
	if r == nil {
		return math.NaN()
	}
	return *r
}

// runReplicated fans reps simulations with consecutive seeds across the
// CPUs via Client.Batch and prints per-seed rows plus the aggregate.
func runReplicated(ctx context.Context, cli *edmac.Client, p edmac.Protocol, s edmac.Scenario, params []float64,
	o edmac.SimOptions, reps int, validate bool) error {
	seeds := make([]int64, reps)
	runs := make([]edmac.BatchRun, reps)
	for i := range seeds {
		seeds[i] = o.Seed + int64(i)
		opts := o
		opts.Seed = seeds[i]
		runs[i] = edmac.BatchRun{Protocol: p, Params: params, Options: opts}
	}
	batch, err := cli.Batch(ctx, edmac.BatchRequest{Scenario: &s, Runs: runs})
	if err != nil {
		return err
	}
	outcomes := batch.Outcomes

	fmt.Printf("protocol          %s  params=%v  reps=%d\n", p, params, reps)
	fmt.Printf("%-8s %-10s %-12s %-12s %-12s %s\n",
		"seed", "delivery", "mean[s]", "outer[s]", "E[J/win]", "collisions")
	var deliv, delay, outer, energy []float64
	for i, out := range outcomes {
		if out.Err != nil {
			return fmt.Errorf("seed %d: %w", seeds[i], out.Err)
		}
		r := out.Report
		fmt.Printf("%-8d %-10.4f %-12.4g %-12.4g %-12.5g %d\n",
			seeds[i], r.DeliveryRatio, r.MeanDelay, r.OuterRingDelay, r.BottleneckEnergy, r.Collisions)
		deliv = append(deliv, r.DeliveryRatio)
		delay = append(delay, r.MeanDelay)
		outer = append(outer, r.OuterRingDelay)
		energy = append(energy, r.BottleneckEnergy)
	}
	mDeliv, sdDeliv := meanStd(deliv)
	mDelay, sdDelay := meanStd(delay)
	mOuter, sdOuter := meanStd(outer)
	mEnergy, sdEnergy := meanStd(energy)
	fmt.Printf("%-8s %-10.4f %-12.4g %-12.4g %-12.5g\n", "mean", mDeliv, mDelay, mOuter, mEnergy)
	fmt.Printf("%-8s %-10.4f %-12.4g %-12.4g %-12.5g\n", "stddev", sdDeliv, sdDelay, sdOuter, sdEnergy)

	if validate {
		eval, err := cli.Evaluate(ctx, edmac.EvaluateRequest{Protocol: p, Scenario: &s, Params: params})
		if err == nil {
			fmt.Printf("\n%-26s %-14s %-14s %s\n", "metric", "analytic", "measured", "ratio")
			fmt.Printf("%-26s %-14.5g %-14.5g %.2f\n", "bottleneck energy [J/win]",
				eval.Energy, mEnergy, mEnergy/eval.Energy)
			fmt.Printf("%-26s %-14.5g %-14.5g %.2f\n", "outer-ring delay [s]",
				eval.Delay, mOuter, mOuter/eval.Delay)
		}
	}
	return nil
}

// meanStd returns the sample mean and standard deviation, ignoring NaNs.
func meanStd(v []float64) (mean, sd float64) {
	n := 0
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		mean += x
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(n-1))
}

func printSimReport(rep edmac.SimReport) {
	fmt.Printf("protocol          %s  params=%v\n", rep.Protocol, rep.Params)
	fmt.Printf("network           %d nodes, %.0f simulated seconds\n", rep.Nodes, rep.Duration)
	fmt.Printf("packets           generated=%d delivered=%d dropped=%d collisions=%d\n",
		rep.Generated, rep.Delivered, rep.Dropped, rep.Collisions)
	fmt.Printf("delivery ratio    %.4f\n", rep.DeliveryRatio)
	fmt.Printf("delay [s]         mean=%.4g p95=%.4g max=%.4g outer-ring=%.4g\n",
		rep.MeanDelay, rep.P95Delay, rep.MaxDelay, rep.OuterRingDelay)
	fmt.Printf("bottleneck energy %.5g J/window\n", rep.BottleneckEnergy)
}

func parseParams(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-params is required (comma-separated, e.g. -params 0.25)")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
