// Command edload is a closed-loop load generator for edserve: a fixed
// pool of workers, each issuing one request after another against a
// live server, for a fixed duration — the standard way to measure a
// serving tier's throughput and latency tails without coordinated
// omission from an open-loop arrival process.
//
// Usage:
//
//	edload [-url http://localhost:8080] [-c 8] [-d 10s]
//	       [-mix optimize=4,simulate=1,suite=0,jobs=1]
//	       [-distinct 8] [-tenant edload]
//
// The mix weights pick the operation each request slot runs:
//
//	optimize  POST /v1/optimize (analytic game, cache-friendly)
//	simulate  POST /v1/simulate (short packet-level replay)
//	suite     POST /v1/suite (small matrix, the heavy synchronous op)
//	jobs      POST /v1/jobs + poll + fetch (the async tier end to end)
//
// -distinct rotates each operation through that many request variants,
// controlling how much of the load the response cache can absorb
// (1 = everything identical, fully cacheable). The report prints, per
// operation and overall, the completed count, error count, throughput
// and the p50/p95/p99 latency percentiles — the numbers that show the
// sync-vs-jobs difference the async tier exists for.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edload:", err)
		os.Exit(1)
	}
}

// op names one request kind of the mix.
type op string

const (
	opOptimize op = "optimize"
	opSimulate op = "simulate"
	opSuite    op = "suite"
	opJobs     op = "jobs"
)

// sample is one completed request slot.
type sample struct {
	op      op
	latency time.Duration
	err     bool
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("edload", flag.ContinueOnError)
	baseURL := fs.String("url", "http://localhost:8080", "edserve base URL")
	conc := fs.Int("c", 8, "concurrent closed-loop workers")
	dur := fs.Duration("d", 10*time.Second, "measurement duration")
	mixSpec := fs.String("mix", "optimize=4,simulate=1,suite=0,jobs=1", "request mix weights")
	distinct := fs.Int("distinct", 8, "distinct request variants per operation (1: fully cacheable)")
	tenant := fs.String("tenant", "edload", "X-Tenant header on job submissions")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request client timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *conc < 1 || *distinct < 1 || *dur <= 0 {
		return fmt.Errorf("need -c >= 1, -distinct >= 1 and -d > 0")
	}
	schedule, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	cli := &http.Client{Timeout: *timeout}
	g := &generator{
		base: strings.TrimRight(*baseURL, "/"), cli: cli,
		distinct: *distinct, tenant: *tenant,
	}
	// One quick probe so a wrong URL fails loudly, not as a wall of
	// per-request errors.
	if err := g.probe(ctx); err != nil {
		return err
	}

	runCtx, cancel := context.WithTimeout(ctx, *dur)
	defer cancel()
	var (
		slot    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
	)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []sample
			for runCtx.Err() == nil {
				i := slot.Add(1) - 1
				o := schedule[i%int64(len(schedule))]
				t0 := time.Now()
				err := g.do(runCtx, o, i)
				lat := time.Since(t0)
				if runCtx.Err() != nil && err != nil {
					// The deadline tore the request down mid-flight; an
					// aborted slot is not a measurement.
					break
				}
				local = append(local, sample{op: o, latency: lat, err: err != nil})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if ctx.Err() != nil && len(samples) == 0 {
		return ctx.Err()
	}
	report(out, samples, elapsed, *conc)
	return nil
}

// parseMix expands "optimize=4,jobs=1" into a deterministic round-robin
// schedule with the requested weights.
func parseMix(spec string) ([]op, error) {
	weights := map[op]int{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		switch o := op(name); o {
		case opOptimize, opSimulate, opSuite, opJobs:
			weights[o] = w
		default:
			return nil, fmt.Errorf("mix entry %q: unknown operation (want optimize, simulate, suite or jobs)", part)
		}
	}
	// Interleave round-robin rather than blocking by kind, so every
	// window of the run sees the same blend.
	var schedule []op
	for {
		progress := false
		for _, o := range []op{opOptimize, opSimulate, opSuite, opJobs} {
			if weights[o] > 0 {
				weights[o]--
				schedule = append(schedule, o)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("mix %q selects no operations", spec)
	}
	return schedule, nil
}

// generator issues the individual requests.
type generator struct {
	base     string
	cli      *http.Client
	distinct int
	tenant   string
}

func (g *generator) probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := g.cli.Do(req)
	if err != nil {
		return fmt.Errorf("probing %s: %w", g.base, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probing %s: /healthz answered %d", g.base, resp.StatusCode)
	}
	return nil
}

// variant derives the slot's request variant in [0, distinct).
func (g *generator) variant(i int64) int64 { return i % int64(g.distinct) }

func (g *generator) do(ctx context.Context, o op, i int64) error {
	v := g.variant(i)
	switch o {
	case opOptimize:
		// Vary the delay bound across variants; every value is feasible
		// for XMAC under the default scenario.
		body := fmt.Sprintf(`{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":%g}}`, 6.0+float64(v)*0.25)
		return g.post(ctx, "/v1/optimize", body, http.StatusOK)
	case opSimulate:
		body := fmt.Sprintf(`{"protocol":"xmac","scenario_name":"ring-baseline","params":[0.25],"options":{"duration":30,"seed":%d}}`, v+1)
		return g.post(ctx, "/v1/simulate", body, http.StatusOK)
	case opSuite:
		body := fmt.Sprintf(`{"scenarios":["ring-baseline"],"protocols":["xmac"],"options":{"duration":40,"seed":%d}}`, v+1)
		return g.post(ctx, "/v1/suite", body, http.StatusOK)
	case opJobs:
		return g.job(ctx, v)
	}
	return fmt.Errorf("unknown op %q", o)
}

func (g *generator) post(ctx context.Context, path, body string, want int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base+path, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.cli.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
	}
	return nil
}

// job runs the async tier end to end: submit, poll to terminal, fetch.
func (g *generator) job(ctx context.Context, v int64) error {
	body := fmt.Sprintf(`{"suite":{"scenarios":["ring-baseline"],"protocols":["xmac"],"options":{"duration":40,"seed":%d}}}`, v+1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", g.tenant)
	resp, err := g.cli.Do(req)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("/v1/jobs: status %d: %s", resp.StatusCode, data)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		return fmt.Errorf("/v1/jobs: unusable submit body %s", data)
	}
	for st.State != "done" && st.State != "failed" && st.State != "cancelled" {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
		sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, g.base+"/v1/jobs/"+st.ID, nil)
		if err != nil {
			return err
		}
		sresp, err := g.cli.Do(sreq)
		if err != nil {
			return err
		}
		sdata, err := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if err != nil {
			return err
		}
		if sresp.StatusCode != http.StatusOK {
			return fmt.Errorf("job status: %d: %s", sresp.StatusCode, sdata)
		}
		if err := json.Unmarshal(sdata, &st); err != nil {
			return err
		}
	}
	if st.State != "done" {
		return fmt.Errorf("job ended %s", st.State)
	}
	rreq, err := http.NewRequestWithContext(ctx, http.MethodGet, g.base+"/v1/jobs/"+st.ID+"/result", nil)
	if err != nil {
		return err
	}
	rresp, err := g.cli.Do(rreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		return fmt.Errorf("job result: status %d", rresp.StatusCode)
	}
	return nil
}

// report prints the throughput/latency table.
func report(out io.Writer, samples []sample, elapsed time.Duration, conc int) {
	byOp := map[op][]sample{}
	for _, s := range samples {
		byOp[s.op] = append(byOp[s.op], s)
	}
	fmt.Fprintf(out, "edload: %d workers, %s elapsed, %d requests (%.1f req/s)\n",
		conc, elapsed.Round(time.Millisecond), len(samples), float64(len(samples))/elapsed.Seconds())
	fmt.Fprintf(out, "%-10s %8s %6s %10s %10s %10s %10s\n", "op", "count", "errs", "req/s", "p50", "p95", "p99")
	rows := append(make([]op, 0, 5), opOptimize, opSimulate, opSuite, opJobs)
	for _, o := range rows {
		ss := byOp[o]
		if len(ss) == 0 {
			continue
		}
		printRow(out, string(o), ss, elapsed)
	}
	printRow(out, "overall", samples, elapsed)
}

func printRow(out io.Writer, name string, ss []sample, elapsed time.Duration) {
	lats := make([]time.Duration, 0, len(ss))
	errs := 0
	for _, s := range ss {
		if s.err {
			errs++
			continue
		}
		lats = append(lats, s.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Fprintf(out, "%-10s %8d %6d %10.1f %10s %10s %10s\n",
		name, len(ss), errs, float64(len(ss))/elapsed.Seconds(),
		fmtLat(percentile(lats, 0.50)), fmtLat(percentile(lats, 0.95)), fmtLat(percentile(lats, 0.99)))
}

// percentile is the nearest-rank percentile of a sorted series.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fmtLat(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}
