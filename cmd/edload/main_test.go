package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/edmac-project/edmac/internal/serve"
)

func TestBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag": {"-nope"},
		"bad mix op":   {"-mix", "teleport=1"},
		"bad weight":   {"-mix", "optimize=x"},
		"empty mix":    {"-mix", "optimize=0"},
		"zero workers": {"-c", "0"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}

func TestParseMixInterleaves(t *testing.T) {
	sched, err := parseMix("optimize=2,jobs=1")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	want := []op{opOptimize, opJobs, opOptimize}
	if len(sched) != len(want) {
		t.Fatalf("schedule = %v, want %v", sched, want)
	}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", sched, want)
		}
	}
}

// TestClosedLoopAgainstLiveServer drives a short mixed run against an
// in-process edserve and checks the report: every operation present,
// zero errors, a sane throughput line.
func TestClosedLoopAgainstLiveServer(t *testing.T) {
	s, err := serve.New(serve.Options{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-url", ts.URL, "-c", "4", "-d", "2s",
		"-mix", "optimize=4,simulate=1,suite=1,jobs=1", "-distinct", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	rep := out.String()
	for _, want := range []string{"edload:", "optimize", "simulate", "suite", "jobs", "overall", "p50", "p99"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	for _, line := range strings.Split(rep, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 7 && fields[0] != "op" && fields[2] != "0" {
			t.Fatalf("operation %s reported %s errors:\n%s", fields[0], fields[2], rep)
		}
	}
}

func TestProbeFailsFast(t *testing.T) {
	start := time.Now()
	err := run(context.Background(), []string{"-url", "http://127.0.0.1:1", "-d", "10s", "-timeout", "2s"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("run succeeded against a dead server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe took %s; should fail fast, not run the full duration", elapsed)
	}
}
