// Command edvet is the repo's own static-analysis suite: it
// mechanically enforces the invariants no compiler checks and tests
// alone would let erode — deterministic replay in the simulator core
// (detrand), medium-owned frame lifetimes (framescope), the frozen
// snake_case JSON wire surface (jsonwire), context discipline
// (ctxfirst), hot-path allocation hygiene (hotalloc), the serving
// tier's lock and goroutine discipline (lockorder, goroleak),
// compiler-verified hot-path escape behavior (escapegold) and the
// frozen exported facade surface (apisurface). See the README's
// "Invariants & static analysis" section for what each analyzer guards
// and which PR established the invariant.
//
// Usage:
//
//	edvet [-list] [-escape] [-update] [packages]
//
// With no arguments (or "./...") every package of the module is
// analyzed. Package arguments are module-relative directories
// (./internal/sim) or full import paths. Diagnostics print one per
// line; every //edvet:ignore suppression is echoed in a summary so
// exceptions stay visible. The exit status is non-zero on any
// diagnostic, including malformed or unexplained ignore directives.
//
// -escape runs the compiler-fact gate instead: `go build
// -gcflags=-m=2` over the escape-scope packages, with the escape/heap
// decisions inside //edvet:hotpath functions diffed against
// internal/lint/testdata/escape_golden.txt. With -update the golden is
// rewritten (`make escape-golden`). -update alone rewrites the
// API-surface golden (`make api-golden`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/edmac-project/edmac/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	escape := flag.Bool("escape", false, "run the escape-analysis golden gate (go build -gcflags=-m=2) instead of the analyzers")
	update := flag.Bool("update", false, "with -escape, rewrite the escape golden; alone, rewrite the API-surface golden")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edvet [-list] [-escape] [-update] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "edvet:", err)
		os.Exit(2)
	}

	if *escape {
		runEscapeGate(root, *update)
		return
	}
	if *update {
		path, err := lint.WriteAPIGolden(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edvet:", err)
			os.Exit(2)
		}
		fmt.Printf("edvet: wrote %s\n", strings.TrimPrefix(path, root+string(filepath.Separator)))
		return
	}

	paths, err := resolvePatterns(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "edvet:", err)
		os.Exit(2)
	}

	res, err := lint.Run(root, paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edvet:", err)
		os.Exit(2)
	}

	for _, d := range res.Diags {
		fmt.Println(relativize(root, d))
	}
	printIgnoreSummary(res)
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "edvet: %d diagnostic(s)\n", len(res.Diags))
		os.Exit(1)
	}
}

// runEscapeGate executes the compiler-fact gate: regenerate the escape
// golden with update, otherwise fail on any drift from it.
func runEscapeGate(root string, update bool) {
	res, err := lint.RunEscape(root, update)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edvet:", err)
		os.Exit(2)
	}
	rel := strings.TrimPrefix(res.GoldenPath, root+string(filepath.Separator))
	if update {
		fmt.Printf("edvet: wrote %s (%d facts)\n", rel, len(res.Lines))
		return
	}
	if !res.Clean() {
		for _, l := range res.Missing {
			fmt.Printf("escape golden: compiler no longer reports: %s\n", l)
		}
		for _, l := range res.Extra {
			fmt.Printf("escape golden: compiler newly reports: %s\n", l)
		}
		fmt.Fprintf(os.Stderr, "edvet: escape golden drift (%d missing, %d extra); run `make escape-golden` if intentional\n",
			len(res.Missing), len(res.Extra))
		os.Exit(1)
	}
	fmt.Printf("edvet: escape golden clean (%d facts, %s)\n", len(res.Lines), rel)
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// resolvePatterns maps command-line package arguments to import paths.
// An empty argument list or "./..." selects every module package.
func resolvePatterns(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, nil
	}
	mod, err := lint.ModulePathOf(root)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			return nil, nil // all packages
		case strings.HasPrefix(a, mod):
			paths = append(paths, a)
		default:
			rel := filepath.ToSlash(filepath.Clean(a))
			rel = strings.TrimPrefix(rel, "./")
			if rel == "." {
				paths = append(paths, mod)
			} else {
				paths = append(paths, mod+"/"+rel)
			}
		}
	}
	return paths, nil
}

// relativize shortens diagnostic file paths to module-relative form.
func relativize(root string, d lint.Diagnostic) string {
	s := d.String()
	prefix := root + string(filepath.Separator)
	return strings.ReplaceAll(s, prefix, "")
}

// printIgnoreSummary echoes every suppression so they stay visible in
// each run's output instead of accumulating silently.
func printIgnoreSummary(res *lint.Result) {
	if len(res.Ignores) == 0 {
		return
	}
	fmt.Printf("edvet: %d suppression(s) in effect:\n", len(res.Ignores))
	for _, ig := range res.Ignores {
		state := ""
		if !ig.Used {
			state = " [unused]"
		}
		fmt.Printf("  %s:%d: %s: %s%s\n", filepath.Base(ig.File), ig.Line, ig.Analyzer, ig.Reason, state)
	}
}
