package main

import (
	"path/filepath"
	"testing"

	"github.com/edmac-project/edmac/internal/lint"
)

func TestResolvePatterns(t *testing.T) {
	root := filepath.Join("..", "..")
	mod, err := lint.ModulePathOf(root)
	if err != nil {
		t.Fatalf("ModulePathOf: %v", err)
	}
	cases := []struct {
		args []string
		want []string
	}{
		{nil, nil},
		{[]string{"./..."}, nil},
		{[]string{"..."}, nil},
		{[]string{"."}, []string{mod}},
		{[]string{"./internal/sim"}, []string{mod + "/internal/sim"}},
		{[]string{"internal/sim", "cmd/edvet"}, []string{mod + "/internal/sim", mod + "/cmd/edvet"}},
		{[]string{mod + "/internal/serve"}, []string{mod + "/internal/serve"}},
	}
	for _, c := range cases {
		got, err := resolvePatterns(root, c.args)
		if err != nil {
			t.Errorf("resolvePatterns(%v): %v", c.args, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("resolvePatterns(%v) = %v, want %v", c.args, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("resolvePatterns(%v)[%d] = %q, want %q", c.args, i, got[i], c.want[i])
			}
		}
	}
}
