// Command edserve serves the energy-delay bargaining framework over
// HTTP/JSON: POST a (scenario, requirements) pair to /v1/optimize and
// get the Nash-bargained operating point back, replay configurations
// via /v1/simulate, and run scenario×protocol matrices via /v1/suite —
// with a bounded LRU response cache in front of the solvers and
// per-request cancellation threaded into the worker pools.
//
// Usage:
//
//	edserve [-addr :8080] [-cache 256] [-result-cache 256] [-workers 0]
//	        [-request-timeout 0] [-drain-timeout 15s]
//	        [-jobs-queue 64] [-jobs-workers 2] [-jobs-ttl 15m]
//	        [-spill-dir ""] [-rate 0] [-burst 5] [-pprof]
//
// The async job tier (POST /v1/jobs and friends) runs long suites off
// the request path: -jobs-queue bounds admission (429 beyond it),
// -jobs-workers sizes the pool, -jobs-ttl bounds result retention, and
// -spill-dir persists finished results across restarts. -rate/-burst
// enable per-tenant token-bucket submission limits (X-Tenant header,
// else remote address); -pprof mounts net/http/pprof. GET /metrics
// always serves the Prometheus text exposition.
//
// A handler panic answers 500 and is counted in /healthz instead of
// killing the process; -request-timeout (when positive) bounds every
// request's context server-side — job execution is exempt, that's what
// jobs are for. The server drains gracefully on SIGINT/SIGTERM: new
// connections stop, in-flight requests get -drain-timeout to finish,
// and when the grace period expires the remaining connections are
// closed so a hung streaming consumer cannot stall the exit forever.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	edmac "github.com/edmac-project/edmac"
	"github.com/edmac-project/edmac/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "edserve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains. ready (when non-nil)
// receives the bound listen address once the socket is open — the hook
// tests use to reach a server started on port 0.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("edserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache", edmac.DefaultCacheSize, "response cache entries")
	resultCache := fs.Int("result-cache", edmac.DefaultCacheSize, "client-side analytic result cache entries")
	workers := fs.Int("workers", 0, "worker pool size for sweeps, batches and suites (0: one per CPU)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline threaded into each request's context (0: none)")
	drain := fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown grace period")
	jobsQueue := fs.Int("jobs-queue", 0, "async job admission queue depth (0: default)")
	jobsWorkers := fs.Int("jobs-workers", 0, "concurrently executing async jobs (0: default)")
	jobsTTL := fs.Duration("jobs-ttl", 0, "retention of finished jobs before GC (0: default)")
	spillDir := fs.String("spill-dir", "", "directory persisting finished job results across restarts (empty: none)")
	rate := fs.Float64("rate", 0, "per-tenant job submissions per second (0: unlimited)")
	burst := fs.Int("burst", serve.DefaultRateBurst, "per-tenant submission burst")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cli, err := edmac.NewClient(
		edmac.WithWorkers(*workers),
		edmac.WithCache(*resultCache),
	)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{
		Client: cli, CacheSize: *cacheSize, RequestTimeout: *reqTimeout,
		JobQueue: *jobsQueue, JobWorkers: *jobsWorkers, JobTTL: *jobsTTL,
		JobSpillDir: *spillDir, RateLimit: *rate, RateBurst: *burst,
		EnablePprof: *pprofOn,
		Logf:        serve.DefaultLogf(),
	})
	if err != nil {
		return err
	}
	// Released after the HTTP drain so in-flight status/result requests
	// still see the store; running jobs are cancelled at that point.
	defer srv.Close()

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	errCh := make(chan error, 1)
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		log.Printf("edserve: listening on %s", ln.Addr())
		errCh <- httpSrv.Serve(ln)
	}()
	// run never returns while the serve goroutine is alive: every exit
	// path below first makes Serve return (error, Shutdown, or Close),
	// and the errCh send is buffered, so this join is bounded.
	defer serveWG.Wait()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("edserve: shutting down (grace %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The grace period expired — a hung request (a stream whose
		// consumer stopped reading, say) is still holding its
		// connection. Close the remaining connections; their request
		// contexts cancel, aborting the in-flight work, and the exit
		// stays bounded by the grace period.
		httpSrv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("edserve: drained cleanly")
	return nil
}
