// Command edserve serves the energy-delay bargaining framework over
// HTTP/JSON: POST a (scenario, requirements) pair to /v1/optimize and
// get the Nash-bargained operating point back, replay configurations
// via /v1/simulate, and run scenario×protocol matrices via /v1/suite —
// with a bounded LRU response cache in front of the solvers and
// per-request cancellation threaded into the worker pools.
//
// Usage:
//
//	edserve [-addr :8080] [-cache 256] [-result-cache 256] [-workers 0]
//
// The server drains gracefully on SIGINT/SIGTERM: new connections stop,
// in-flight requests get -drain-timeout to finish (their contexts are
// cancelled when it expires).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	edmac "github.com/edmac-project/edmac"
	"github.com/edmac-project/edmac/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache", edmac.DefaultCacheSize, "response cache entries")
	resultCache := fs.Int("result-cache", edmac.DefaultCacheSize, "client-side analytic result cache entries")
	workers := fs.Int("workers", 0, "worker pool size for sweeps, batches and suites (0: one per CPU)")
	drain := fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown grace period")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cli, err := edmac.NewClient(
		edmac.WithWorkers(*workers),
		edmac.WithCache(*resultCache),
	)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{Client: cli, CacheSize: *cacheSize, Logf: serve.DefaultLogf()})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("edserve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("edserve: shutting down (grace %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The grace period expired: close remaining connections; their
		// request contexts cancel, aborting in-flight work.
		httpSrv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("edserve: drained cleanly")
	return nil
}
