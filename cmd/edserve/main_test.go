package main

import "testing"

// The serving behaviour itself is integration-tested in internal/serve;
// the binary's own surface is flag handling.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-drain-timeout", "nonsense"}); err == nil {
		t.Fatal("bad duration accepted")
	}
}
