package main

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The serving behaviour itself is integration-tested in internal/serve;
// the binary's own surface is flag handling and shutdown discipline.
func TestBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-bogus"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{"-drain-timeout", "nonsense"}, nil); err == nil {
		t.Fatal("bad duration accepted")
	}
	if err := run(ctx, []string{"-request-timeout", "nonsense"}, nil); err == nil {
		t.Fatal("bad request timeout accepted")
	}
}

// TestShutdownBoundedByDrainTimeout is the stuck-consumer regression
// test: a client opens a streaming suite, reads one cell, then stops
// reading without closing — the handler is wedged mid-stream. SIGTERM
// (modelled by cancelling run's context) must still bring the process
// down within the drain grace period, by force-closing the hung
// connection after Shutdown's deadline expires.
func TestShutdownBoundedByDrainTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-drain-timeout", "500ms"},
			func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	// Open a stream whose one cell takes minutes to compute, then go
	// quiet with the connection open: the headers are out (the handler
	// is committed to the stream) but no cell will arrive before the
	// drain deadline.
	body := `{"scenarios":["ring-baseline"],"protocols":["xmac"],"options":{"duration":1000000,"seed":1}}`
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/suite?stream=ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	// Let the suite spin up before pulling the plug.
	time.Sleep(300 * time.Millisecond)

	// SIGTERM with the stream wedged: the exit must be bounded by the
	// 500ms grace period, not wait for the suite to finish.
	start := time.Now()
	cancel()
	select {
	case err := <-runErr:
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("shutdown took %s with a stuck consumer; drain bound not honoured", elapsed)
		}
		// The expired grace period is reported, not swallowed.
		if err == nil || !strings.Contains(err.Error(), "shutdown") {
			t.Fatalf("run returned %v, want a shutdown-deadline error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never returned after SIGTERM with a stuck stream consumer")
	}
}

// TestShutdownCleanWhenIdle: with no requests in flight the drain
// completes immediately and run returns nil.
func TestShutdownCleanWhenIdle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"},
			func(addr string) { addrCh <- addr })
	}()
	select {
	case <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("idle shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle shutdown hung")
	}
}
