// Command edmac optimizes duty-cycled MAC protocol parameters for a fair
// energy-delay trade-off using the Nash-bargaining framework, and
// regenerates the paper's figures.
//
// Usage:
//
//	edmac optimize -protocol xmac -budget 0.06 -deadline 6
//	edmac compare  -budget 0.06 -deadline 6
//	edmac frontier -protocol lmac -deadline 6 -points 25
//	edmac fig1     [-protocol xmac|dmac|lmac|all]
//	edmac fig2     [-protocol xmac|dmac|lmac|all]
//	edmac params   -protocol dmac
//
// Scenario flags (-depth, -density, -interval, -window, -payload,
// -radio) are accepted by every subcommand.
package main

import (
	"flag"
	"fmt"
	"os"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edmac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (optimize, compare, frontier, fig1, fig2, params)")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "optimize":
		return cmdOptimize(rest)
	case "compare":
		return cmdCompare(rest)
	case "frontier":
		return cmdFrontier(rest)
	case "fig1":
		return cmdFigure(rest, true)
	case "fig2":
		return cmdFigure(rest, false)
	case "params":
		return cmdParams(rest)
	case "help", "-h", "--help":
		fmt.Println("subcommands: optimize, compare, frontier, fig1, fig2, params")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// scenarioFlags registers the deployment flags on fs and returns a
// loader to call after parsing.
func scenarioFlags(fs *flag.FlagSet) func() edmac.Scenario {
	def := edmac.DefaultScenario()
	depth := fs.Int("depth", def.Depth, "network depth D in hops")
	density := fs.Int("density", def.Density, "unit-disk neighbourhood density C")
	interval := fs.Float64("interval", def.SampleInterval, "seconds between samples per node")
	window := fs.Float64("window", def.Window, "energy accounting window in seconds")
	payload := fs.Int("payload", def.Payload, "application payload bytes")
	radioName := fs.String("radio", def.Radio, "radio profile (cc2420, cc1101)")
	return func() edmac.Scenario {
		return edmac.Scenario{
			Depth:          *depth,
			Density:        *density,
			SampleInterval: *interval,
			Window:         *window,
			Payload:        *payload,
			Radio:          *radioName,
		}
	}
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol (xmac, dmac, lmac, bmac)")
	budget := fs.Float64("budget", 0.06, "energy budget per window in joules")
	deadline := fs.Float64("deadline", 6, "maximum end-to-end delay in seconds")
	relaxed := fs.Bool("relaxed", false, "allow best-effort points when the pair is unattainable")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := edmac.Requirements{EnergyBudget: *budget, MaxDelay: *deadline}
	var res edmac.Result
	var err error
	if *relaxed {
		res, err = edmac.OptimizeRelaxed(edmac.Protocol(*protocol), scenario(), req)
	} else {
		res, err = edmac.Optimize(edmac.Protocol(*protocol), scenario(), req)
	}
	if err != nil {
		return err
	}
	printResult(res, scenario())
	return nil
}

func printResult(res edmac.Result, s edmac.Scenario) {
	specs, _ := edmac.Params(res.Protocol, s)
	fmt.Printf("protocol      %s\n", res.Protocol)
	fmt.Printf("requirements  Ebudget=%g J/window, Lmax=%g s\n",
		res.Requirements.EnergyBudget, res.Requirements.MaxDelay)
	row := func(name string, p edmac.OperatingPoint) {
		fmt.Printf("%-13s E=%-10.5g L=%-9.4g params=%s\n", name, p.Energy, p.Delay, formatParams(p.Params, specs))
	}
	row("energy-opt", res.EnergyOptimal)
	row("delay-opt", res.DelayOptimal)
	fmt.Printf("%-13s E=%-10.5g L=%-9.4g\n", "threat point", res.WorstEnergy, res.WorstDelay)
	row("nash bargain", res.Bargain)
	fmt.Printf("fairness      energy=%.3f delay=%.3f\n", res.FairnessEnergy, res.FairnessDelay)
	if res.BudgetExceeded {
		fmt.Println("note          requirements jointly unattainable; best-effort point exceeds the budget")
	}
	if res.Degenerate {
		fmt.Println("note          degenerate game: no strict joint improvement over the threat point")
	}
}

func formatParams(params []float64, specs []edmac.ParamSpec) string {
	out := ""
	for i, v := range params {
		if i > 0 {
			out += ", "
		}
		if i < len(specs) {
			out += fmt.Sprintf("%s=%.4g %s", specs[i].Name, v, specs[i].Unit)
		} else {
			out += fmt.Sprintf("%.4g", v)
		}
	}
	return out
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	budget := fs.Float64("budget", 0.06, "energy budget per window in joules")
	deadline := fs.Float64("deadline", 6, "maximum end-to-end delay in seconds")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := edmac.Requirements{EnergyBudget: *budget, MaxDelay: *deadline}
	comps := edmac.Compare(scenario(), req)
	fmt.Printf("%-6s %-12s %-10s %-8s %s\n", "proto", "E* [J]", "L* [s]", "flags", "params")
	for _, c := range comps {
		if c.Err != nil {
			fmt.Printf("%-6s infeasible: %v\n", c.Protocol, c.Err)
			continue
		}
		flags := "-"
		if c.Result.BudgetExceeded {
			flags = "over-budget"
		}
		specs, _ := edmac.Params(c.Protocol, scenario())
		fmt.Printf("%-6s %-12.5g %-10.4g %-8s %s\n", c.Protocol,
			c.Result.Bargain.Energy, c.Result.Bargain.Delay, flags,
			formatParams(c.Result.Bargain.Params, specs))
	}
	if best, ok := edmac.Best(comps); ok {
		fmt.Printf("best: %s\n", best.Protocol)
	} else {
		fmt.Println("best: none meets the requirements outright")
	}
	return nil
}

func cmdFrontier(args []string) error {
	fs := flag.NewFlagSet("frontier", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol")
	budget := fs.Float64("budget", 0.06, "energy budget per window in joules")
	deadline := fs.Float64("deadline", 6, "maximum end-to-end delay in seconds")
	points := fs.Int("points", 25, "number of frontier samples")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pts, err := edmac.Frontier(edmac.Protocol(*protocol), scenario(),
		edmac.Requirements{EnergyBudget: *budget, MaxDelay: *deadline}, *points)
	if err != nil {
		return err
	}
	fmt.Println("energy_j,delay_s")
	for _, p := range pts {
		fmt.Printf("%.6g,%.6g\n", p.Energy, p.Delay)
	}
	return nil
}

func cmdParams(args []string) error {
	fs := flag.NewFlagSet("params", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := edmac.Params(edmac.Protocol(*protocol), scenario())
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-6s %-12s %-12s\n", "name", "unit", "min", "max")
	for _, sp := range specs {
		fmt.Printf("%-18s %-6s %-12.5g %-12.5g\n", sp.Name, sp.Unit, sp.Min, sp.Max)
	}
	return nil
}
