// Command edmac optimizes duty-cycled MAC protocol parameters for a fair
// energy-delay trade-off using the Nash-bargaining framework, and
// regenerates the paper's figures.
//
// Usage:
//
//	edmac optimize -protocol xmac -budget 0.06 -deadline 6
//	edmac compare  -budget 0.06 -deadline 6
//	edmac frontier -protocol lmac -deadline 6 -points 25
//	edmac fig1     [-protocol xmac|dmac|lmac|all]
//	edmac fig2     [-protocol xmac|dmac|lmac|all]
//	edmac params   -protocol dmac
//
// Scenario flags (-depth, -density, -interval, -window, -payload,
// -radio) are accepted by every subcommand.
//
// The command is a thin shell over edmac.Client: one client serves
// every subcommand, and an interrupt (Ctrl-C) cancels the context the
// requests run under, aborting solves and sweeps in flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	edmac "github.com/edmac-project/edmac"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edmac:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (optimize, compare, frontier, fig1, fig2, params)")
	}
	cli, err := edmac.NewClient(edmac.WithCache(edmac.DefaultCacheSize))
	if err != nil {
		return err
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "optimize":
		return cmdOptimize(ctx, cli, rest)
	case "compare":
		return cmdCompare(ctx, cli, rest)
	case "frontier":
		return cmdFrontier(ctx, cli, rest)
	case "fig1":
		return cmdFigure(ctx, cli, rest, true)
	case "fig2":
		return cmdFigure(ctx, cli, rest, false)
	case "params":
		return cmdParams(ctx, cli, rest)
	case "help", "-h", "--help":
		fmt.Println("subcommands: optimize, compare, frontier, fig1, fig2, params")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// scenarioFlags registers the deployment flags on fs and returns a
// loader to call after parsing.
func scenarioFlags(fs *flag.FlagSet) func() edmac.Scenario {
	def := edmac.DefaultScenario()
	depth := fs.Int("depth", def.Depth, "network depth D in hops")
	density := fs.Int("density", def.Density, "unit-disk neighbourhood density C")
	interval := fs.Float64("interval", def.SampleInterval, "seconds between samples per node")
	window := fs.Float64("window", def.Window, "energy accounting window in seconds")
	payload := fs.Int("payload", def.Payload, "application payload bytes")
	radioName := fs.String("radio", def.Radio, "radio profile (cc2420, cc1101)")
	return func() edmac.Scenario {
		return edmac.Scenario{
			Depth:          *depth,
			Density:        *density,
			SampleInterval: *interval,
			Window:         *window,
			Payload:        *payload,
			Radio:          *radioName,
		}
	}
}

func cmdOptimize(ctx context.Context, cli *edmac.Client, args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol (xmac, dmac, lmac, bmac)")
	budget := fs.Float64("budget", 0.06, "energy budget per window in joules")
	deadline := fs.Float64("deadline", 6, "maximum end-to-end delay in seconds")
	relaxed := fs.Bool("relaxed", false, "allow best-effort points when the pair is unattainable")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := scenario()
	rep, err := cli.Optimize(ctx, edmac.OptimizeRequest{
		Protocol:     edmac.Protocol(*protocol),
		Scenario:     &s,
		Requirements: edmac.Requirements{EnergyBudget: *budget, MaxDelay: *deadline},
		Relaxed:      *relaxed,
	})
	if err != nil {
		return err
	}
	printResult(ctx, cli, rep.Result, s)
	return nil
}

func printResult(ctx context.Context, cli *edmac.Client, res edmac.Result, s edmac.Scenario) {
	specs := paramTable(ctx, cli, res.Protocol, s)
	fmt.Printf("protocol      %s\n", res.Protocol)
	fmt.Printf("requirements  Ebudget=%g J/window, Lmax=%g s\n",
		res.Requirements.EnergyBudget, res.Requirements.MaxDelay)
	row := func(name string, p edmac.OperatingPoint) {
		fmt.Printf("%-13s E=%-10.5g L=%-9.4g params=%s\n", name, p.Energy, p.Delay, formatParams(p.Params, specs))
	}
	row("energy-opt", res.EnergyOptimal)
	row("delay-opt", res.DelayOptimal)
	fmt.Printf("%-13s E=%-10.5g L=%-9.4g\n", "threat point", res.WorstEnergy, res.WorstDelay)
	row("nash bargain", res.Bargain)
	fmt.Printf("fairness      energy=%.3f delay=%.3f\n", res.FairnessEnergy, res.FairnessDelay)
	if res.BudgetExceeded {
		fmt.Println("note          requirements jointly unattainable; best-effort point exceeds the budget")
	}
	if res.Degenerate {
		fmt.Println("note          degenerate game: no strict joint improvement over the threat point")
	}
}

// paramTable fetches the parameter specs for labelling, empty on error
// (labels then fall back to bare numbers, as before).
func paramTable(ctx context.Context, cli *edmac.Client, p edmac.Protocol, s edmac.Scenario) []edmac.ParamSpec {
	rep, _ := cli.Params(ctx, edmac.ParamsRequest{Protocol: p, Scenario: &s})
	return rep.Params
}

func formatParams(params []float64, specs []edmac.ParamSpec) string {
	out := ""
	for i, v := range params {
		if i > 0 {
			out += ", "
		}
		if i < len(specs) {
			out += fmt.Sprintf("%s=%.4g %s", specs[i].Name, v, specs[i].Unit)
		} else {
			out += fmt.Sprintf("%.4g", v)
		}
	}
	return out
}

func cmdCompare(ctx context.Context, cli *edmac.Client, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	budget := fs.Float64("budget", 0.06, "energy budget per window in joules")
	deadline := fs.Float64("deadline", 6, "maximum end-to-end delay in seconds")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := scenario()
	rep, err := cli.Compare(ctx, edmac.CompareRequest{
		Scenario:     &s,
		Requirements: edmac.Requirements{EnergyBudget: *budget, MaxDelay: *deadline},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-12s %-10s %-8s %s\n", "proto", "E* [J]", "L* [s]", "flags", "params")
	for _, c := range rep.Comparisons {
		if c.Err != nil {
			fmt.Printf("%-6s infeasible: %v\n", c.Protocol, c.Err)
			continue
		}
		flags := "-"
		if c.Result.BudgetExceeded {
			flags = "over-budget"
		}
		fmt.Printf("%-6s %-12.5g %-10.4g %-8s %s\n", c.Protocol,
			c.Result.Bargain.Energy, c.Result.Bargain.Delay, flags,
			formatParams(c.Result.Bargain.Params, paramTable(ctx, cli, c.Protocol, s)))
	}
	if rep.Best >= 0 {
		fmt.Printf("best: %s\n", rep.Comparisons[rep.Best].Protocol)
	} else {
		fmt.Println("best: none meets the requirements outright")
	}
	return nil
}

func cmdFrontier(ctx context.Context, cli *edmac.Client, args []string) error {
	fs := flag.NewFlagSet("frontier", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol")
	budget := fs.Float64("budget", 0.06, "energy budget per window in joules")
	deadline := fs.Float64("deadline", 6, "maximum end-to-end delay in seconds")
	points := fs.Int("points", 25, "number of frontier samples")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := scenario()
	rep, err := cli.Frontier(ctx, edmac.FrontierRequest{
		Protocol:     edmac.Protocol(*protocol),
		Scenario:     &s,
		Requirements: edmac.Requirements{EnergyBudget: *budget, MaxDelay: *deadline},
		Points:       *points,
	})
	if err != nil {
		return err
	}
	fmt.Println("energy_j,delay_s")
	for _, p := range rep.Points {
		fmt.Printf("%.6g,%.6g\n", p.Energy, p.Delay)
	}
	return nil
}

func cmdParams(ctx context.Context, cli *edmac.Client, args []string) error {
	fs := flag.NewFlagSet("params", flag.ContinueOnError)
	protocol := fs.String("protocol", "xmac", "protocol")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := scenario()
	rep, err := cli.Params(ctx, edmac.ParamsRequest{Protocol: edmac.Protocol(*protocol), Scenario: &s})
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-6s %-12s %-12s\n", "name", "unit", "min", "max")
	for _, sp := range rep.Params {
		fmt.Printf("%-18s %-6s %-12.5g %-12.5g\n", sp.Name, sp.Unit, sp.Min, sp.Max)
	}
	return nil
}
