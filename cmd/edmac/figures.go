package main

import (
	"context"
	"flag"
	"fmt"

	edmac "github.com/edmac-project/edmac"
)

// paperDelays and paperBudgets are the sweeps of the paper's figures.
var (
	paperDelays  = edmac.PaperDelays()
	paperBudgets = edmac.PaperBudgets()
)

// cmdFigure regenerates Figure 1 (fig1: Ebudget fixed at 0.06 J, Lmax
// swept over 1..6 s) or Figure 2 (fig2: Lmax fixed at 6 s, Ebudget swept
// over 0.01..0.06 J) for one protocol or all three.
func cmdFigure(ctx context.Context, cli *edmac.Client, args []string, fig1 bool) error {
	fs := flag.NewFlagSet("fig", flag.ContinueOnError)
	protocol := fs.String("protocol", "all", "protocol (xmac, dmac, lmac, all)")
	plot := fs.Bool("plot", true, "render an ASCII scatter of frontier and trade-off points")
	scenario := scenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	protos := []edmac.Protocol{edmac.XMAC, edmac.DMAC, edmac.LMAC}
	if *protocol != "all" {
		protos = []edmac.Protocol{edmac.Protocol(*protocol)}
	}
	for _, p := range protos {
		if err := figureFor(ctx, cli, p, scenario(), fig1, *plot); err != nil {
			return err
		}
	}
	return nil
}

func figureFor(ctx context.Context, cli *edmac.Client, p edmac.Protocol, s edmac.Scenario, fig1, plot bool) error {
	if fig1 {
		fmt.Printf("\n== Figure 1 (%s): Ebudget = 0.06 J, Lmax in 1..6 s ==\n", p)
	} else {
		fmt.Printf("\n== Figure 2 (%s): Lmax = 6 s, Ebudget in 0.01..0.06 J ==\n", p)
	}
	fmt.Printf("%-14s %-12s %-10s %s\n", "sweep value", "E* [J]", "L* [s]", "flags")

	// The grid cells are independent solves; the sweep fans them across
	// every CPU and returns them in sweep order. The fixed axis of each
	// figure is the paper's headline requirement pair.
	anchor := edmac.PaperRequirements()
	sweep := edmac.SweepRequest{
		Protocol: p, Scenario: &s,
		Axis: edmac.SweepDelay, Fixed: anchor.EnergyBudget, Values: paperDelays,
	}
	if !fig1 {
		sweep.Axis, sweep.Fixed, sweep.Values = edmac.SweepEnergy, anchor.MaxDelay, paperBudgets
	}
	rep, err := cli.Sweep(ctx, sweep)
	if err != nil {
		return err
	}
	pts := rep.Points

	type mark struct{ e, l float64 }
	var marks []mark
	for _, pt := range pts {
		label := fmt.Sprintf("Lmax=%g s", pt.Requirements.MaxDelay)
		if !fig1 {
			label = fmt.Sprintf("Eb=%g J", pt.Requirements.EnergyBudget)
		}
		if pt.Err != nil {
			fmt.Printf("%-14s infeasible: %v\n", label, pt.Err)
			continue
		}
		res := pt.Result
		flags := "-"
		if res.BudgetExceeded {
			flags = "over-budget"
		}
		fmt.Printf("%-14s %-12.5g %-10.4g %s\n", label, res.Bargain.Energy, res.Bargain.Delay, flags)
		marks = append(marks, mark{res.Bargain.Energy, res.Bargain.Delay})
	}

	if !plot {
		return nil
	}
	frontRep, err := cli.Frontier(ctx, edmac.FrontierRequest{
		Protocol: p, Scenario: &s,
		Requirements: edmac.Requirements{EnergyBudget: 10, MaxDelay: 6},
		Points:       40,
	})
	if err != nil {
		return fmt.Errorf("frontier for plot: %w", err)
	}
	var xs, ys []float64
	for _, f := range frontRep.Points {
		xs = append(xs, f.Energy)
		ys = append(ys, f.Delay)
	}
	var mx, my []float64
	for _, m := range marks {
		mx = append(mx, m.e)
		my = append(my, m.l)
	}
	fmt.Println(asciiScatter(xs, ys, mx, my, 64, 18,
		"E [J] →", "L [s] ↑  (.: frontier, o: trade-off points)"))
	return nil
}

// asciiScatter renders two point sets on a text grid: background points
// as '.' and marked points as 'o'.
func asciiScatter(xs, ys, mx, my []float64, w, h int, xlabel, ylabel string) string {
	minX, maxX := bounds(append(append([]float64{}, xs...), mx...))
	minY, maxY := bounds(append(append([]float64{}, ys...), my...))
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = make([]byte, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	place := func(x, y float64, ch byte) {
		cx := int(float64(w-1) * (x - minX) / (maxX - minX))
		cy := int(float64(h-1) * (y - minY) / (maxY - minY))
		grid[h-1-cy][cx] = ch
	}
	for i := range xs {
		place(xs[i], ys[i], '.')
	}
	for i := range mx {
		place(mx[i], my[i], 'o')
	}
	out := ylabel + "\n"
	for _, row := range grid {
		out += "|" + string(row) + "\n"
	}
	out += "+" + repeat('-', w) + "\n"
	out += fmt.Sprintf(" %-10.4g%s%10.4g   %s\n", minX, repeat(' ', w-22), maxX, xlabel)
	return out
}

func bounds(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 1
	}
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
