package main

import (
	"context"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{name: "no args", args: nil, wantErr: true},
		{name: "unknown", args: []string{"bogus"}, wantErr: true},
		{name: "help", args: []string{"help"}},
		{name: "optimize default", args: []string{"optimize"}},
		{name: "optimize lmac relaxed tight budget", args: []string{"optimize", "-protocol", "lmac", "-budget", "0.01", "-relaxed"}},
		{name: "optimize strict infeasible", args: []string{"optimize", "-protocol", "lmac", "-budget", "0.01"}, wantErr: true},
		{name: "optimize unknown protocol", args: []string{"optimize", "-protocol", "smac"}, wantErr: true},
		{name: "optimize bad radio", args: []string{"optimize", "-radio", "nrf24"}, wantErr: true},
		{name: "compare", args: []string{"compare"}},
		{name: "frontier", args: []string{"frontier", "-protocol", "dmac", "-points", "8"}},
		{name: "frontier bad n", args: []string{"frontier", "-points", "1"}, wantErr: true},
		{name: "params", args: []string{"params", "-protocol", "scpmac"}},
		{name: "fig1 xmac no plot", args: []string{"fig1", "-protocol", "xmac", "-plot=false"}},
		{name: "fig2 lmac no plot", args: []string{"fig2", "-protocol", "lmac", "-plot=false"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(context.Background(), tt.args)
			if (err != nil) != tt.wantErr {
				t.Errorf("run(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			}
		})
	}
}

func TestASCIIScatter(t *testing.T) {
	out := asciiScatter([]float64{0, 1, 2}, []float64{0, 1, 4}, []float64{1}, []float64{1}, 20, 8, "x", "y")
	if len(out) == 0 {
		t.Fatal("empty plot")
	}
	// Marked point must render as 'o'.
	found := false
	for _, ch := range out {
		if ch == 'o' {
			found = true
		}
	}
	if !found {
		t.Error("marker missing from plot")
	}
	// Degenerate ranges must not panic.
	_ = asciiScatter([]float64{1, 1}, []float64{2, 2}, nil, nil, 10, 4, "x", "y")
	_ = asciiScatter(nil, nil, nil, nil, 10, 4, "x", "y")
}

func TestBoundsHelper(t *testing.T) {
	lo, hi := bounds([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("bounds = (%v, %v), want (-1, 7)", lo, hi)
	}
	lo, hi = bounds(nil)
	if lo != 0 || hi != 1 {
		t.Errorf("bounds(nil) = (%v, %v), want (0, 1)", lo, hi)
	}
}
